package campaign

import (
	"math"
	"testing"

	"ftb/internal/rng"
)

func TestMonteCarloEstimateConverges(t *testing.T) {
	cfg := chainConfig(16, 1e-9, 2)
	gt, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overall := gt.Overall()
	truth := overall.SDCRatio()

	est, err := MonteCarlo(cfg, rng.New(1), 400)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 400 {
		t.Fatalf("samples = %d", est.Samples)
	}
	if est.CILow > truth || est.CIHigh < truth {
		t.Errorf("95%% CI [%.3f, %.3f] misses truth %.3f", est.CILow, est.CIHigh, truth)
	}
	if math.Abs(est.SDCRatio-truth) > 0.1 {
		t.Errorf("estimate %.3f far from truth %.3f", est.SDCRatio, truth)
	}
	if est.SitesCovered < 1 || est.SitesCovered > 16 {
		t.Errorf("sites covered = %d", est.SitesCovered)
	}
}

func TestMonteCarloFullSpaceIsExact(t *testing.T) {
	cfg := chainConfig(8, 1e-9, 1)
	gt, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overall := gt.Overall()
	est, err := MonteCarlo(cfg, rng.New(2), 8*64)
	if err != nil {
		t.Fatal(err)
	}
	if est.SDCRatio != overall.SDCRatio() {
		t.Errorf("full-space MC %.4f != exhaustive %.4f", est.SDCRatio, overall.SDCRatio())
	}
	if est.SitesCovered != 8 {
		t.Errorf("full-space coverage %d sites, want 8", est.SitesCovered)
	}
}

func TestMonteCarloBudgetValidation(t *testing.T) {
	cfg := chainConfig(4, 1e-9, 1)
	if _, err := MonteCarlo(cfg, rng.New(1), 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := MonteCarlo(cfg, rng.New(1), 4*64+1); err == nil {
		t.Error("overdraw accepted")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := wilson(0, 100)
	if lo != 0 || hi < 0.01 || hi > 0.1 {
		t.Errorf("wilson(0,100) = [%.4f, %.4f]", lo, hi)
	}
	lo, hi = wilson(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("wilson(50,100) = [%.4f, %.4f] misses 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide: %.4f", hi-lo)
	}
	lo, hi = wilson(100, 100)
	if hi != 1 || lo > 1 || lo < 0.9 {
		t.Errorf("wilson(100,100) = [%.4f, %.4f]", lo, hi)
	}
	if lo, hi := wilson(0, 0); lo != 0 || hi != 1 {
		t.Errorf("wilson(0,0) = [%.4f, %.4f]", lo, hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	_, hi1 := wilson(10, 100)
	lo1, _ := wilson(10, 100)
	lo2, hi2 := wilson(100, 1000)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Errorf("interval did not shrink: %.4f -> %.4f", hi1-lo1, hi2-lo2)
	}
}

func TestMCSamplesForHalfWidth(t *testing.T) {
	// Classic worst case: p=0.5, w=0.05 -> ~385 samples.
	n := MCSamplesForHalfWidth(0.5, 0.05)
	if n < 380 || n > 390 {
		t.Errorf("n = %d, want ~385", n)
	}
	// Tighter width costs quadratically more.
	n2 := MCSamplesForHalfWidth(0.5, 0.005)
	if n2 < 90*n || n2 > 110*n {
		t.Errorf("10x tighter width needs %d vs %d, want ~100x", n2, n)
	}
}

func TestMCSamplesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MCSamplesForHalfWidth(0.5, 0) },
		func() { MCSamplesForHalfWidth(-0.1, 0.05) },
		func() { MCSamplesForHalfWidth(1.1, 0.05) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestWilsonIntervalEdges pins the closed forms at the boundary success
// counts: with 0 successes the interval is [0, z²/(n+z²)]; with all n
// successes it mirrors to [n/(n+z²), 1]. These are the cases a naive
// normal-approximation interval gets wrong (it collapses to [0,0] and
// [1,1]).
func TestWilsonIntervalEdges(t *testing.T) {
	const z = 1.959963984540054
	for _, n := range []int{1, 10, 100, 10000} {
		fn := float64(n)
		lo, hi := wilson(0, n)
		if lo != 0 {
			t.Errorf("wilson(0,%d) lo = %g, want exactly 0", n, lo)
		}
		wantHi := z * z / (fn + z*z)
		if math.Abs(hi-wantHi) > 1e-12 {
			t.Errorf("wilson(0,%d) hi = %g, want %g", n, hi, wantHi)
		}
		if hi <= 0 || hi >= 1 {
			t.Errorf("wilson(0,%d) hi = %g outside (0,1)", n, hi)
		}

		lo, hi = wilson(n, n)
		if hi != 1 {
			t.Errorf("wilson(%d,%d) hi = %g, want exactly 1", n, n, hi)
		}
		wantLo := fn / (fn + z*z)
		if math.Abs(lo-wantLo) > 1e-12 {
			t.Errorf("wilson(%d,%d) lo = %g, want %g", n, n, lo, wantLo)
		}

		// The interval is symmetric under k -> n-k reflection.
		lo0, hi0 := wilson(1, n)
		lo1, hi1 := wilson(n-1, n)
		if math.Abs(lo0-(1-hi1)) > 1e-12 || math.Abs(hi0-(1-lo1)) > 1e-12 {
			t.Errorf("wilson(1,%d)=[%g,%g] not the mirror of wilson(%d,%d)=[%g,%g]",
				n, lo0, hi0, n-1, n, lo1, hi1)
		}
	}
}
