package campaign_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"ftb/internal/campaign"
	"ftb/internal/obs"
)

// spanPair holds the interleaved off/on measurement for span recording,
// taken once and reported by both sub-benchmarks. The layout mirrors
// the collector benchmark: the span layer rides the same hot path and
// carries the same ≤5% acceptance budget.
var spanPair struct {
	once        sync.Once
	offNs, onNs float64
	overheadPct float64
	experiments int
}

// measureSpanPair times the same campaign with and without a span
// recorder in alternating rounds (flipping the order each round), so
// machine-load drift charges both variants equally. Spans at the
// default sampling rate cost two clock reads per batch plus two per
// sampled experiment, which should disappear against representative
// multi-microsecond experiments.
func measureSpanPair() {
	const rounds = 12 // plus one warmup round
	cfgOff := benchConfig(2048, 4)
	cfgOn := benchConfig(2048, 4)
	pairs := campaign.AllPairs(cfgOff.Golden.Sites(), 64)[:2048]
	run := func(cfg *campaign.Config, spans bool) time.Duration {
		if spans {
			// A fresh recorder per round: a full stripe would silently
			// stop paying the write cost and flatter the measurement.
			cfg.Spans = obs.NewRecorder()
		}
		start := time.Now()
		if _, err := campaign.RunPairs(*cfg, pairs); err != nil {
			panic(err)
		}
		return time.Since(start)
	}
	var offTot, onTot time.Duration
	ratios := make([]float64, 0, rounds)
	for r := 0; r <= rounds; r++ {
		var off, on time.Duration
		if r%2 == 0 {
			off = run(&cfgOff, false)
			on = run(&cfgOn, true)
		} else {
			on = run(&cfgOn, true)
			off = run(&cfgOff, false)
		}
		if r == 0 {
			continue // warmup: first round pays cache and allocator fills
		}
		offTot += off
		onTot += on
		ratios = append(ratios, float64(on-off)/float64(off))
	}
	spanPair.offNs = float64(offTot.Nanoseconds()) / rounds
	spanPair.onNs = float64(onTot.Nanoseconds()) / rounds
	// The overhead figure gated against the 5% budget is the median of
	// the per-round paired ratios, not the ratio of means: a single
	// scheduler hiccup in one round (routine on a loaded host) would
	// otherwise swing the mean by more than the effect being measured.
	sort.Float64s(ratios)
	spanPair.overheadPct = 100 * ratios[len(ratios)/2]
	spanPair.experiments = len(pairs)
}

// BenchmarkEngineSpans reports span recording's hot-path overhead: the
// same campaign with and without a recorder attached, measured
// interleaved (see measureSpanPair). ns/op is per campaign; the "on"
// sub-benchmark also reports overhead_pct, the number the ≤5% budget
// gates in bench-check.
func BenchmarkEngineSpans(b *testing.B) {
	for _, mode := range []struct {
		name string
		ns   *float64
	}{
		{"off", &spanPair.offNs},
		{"on", &spanPair.onNs},
	} {
		b.Run(mode.name, func(b *testing.B) {
			spanPair.once.Do(measureSpanPair)
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(*mode.ns, "ns/op")
			b.ReportMetric(float64(spanPair.experiments), "experiments/op")
			if mode.name == "on" {
				b.ReportMetric(spanPair.overheadPct, "overhead_pct")
				if spanPair.overheadPct > 5 {
					b.Errorf("span overhead %.2f%% exceeds the 5%% budget (off %.0fns, on %.0fns)",
						spanPair.overheadPct, spanPair.offNs, spanPair.onNs)
				}
			}
		})
	}
}
