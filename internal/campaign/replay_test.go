package campaign_test

import (
	"testing"

	"ftb/internal/campaign"
	"ftb/internal/kernels"
	"ftb/internal/telemetry"
	"ftb/internal/trace"
)

// TestReplayMatrixByteIdentical is the tentpole's correctness bar: for
// every registered kernel — both element widths, crash-heavy kernels
// (cholesky's sqrt of corrupted negatives) included — an exhaustive
// campaign with checkpointed replay must produce a ground truth
// byte-identical to the vanilla full-execution campaign, under both
// scheduling modes.
func TestReplayMatrixByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel matrix in -short mode")
	}
	for _, name := range kernels.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, err := kernels.New(name, kernels.SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := trace.Golden(k)
			if err != nil {
				t.Fatal(err)
			}
			base := campaign.Config{
				Factory: func() trace.Program {
					kk, err := kernels.New(name, kernels.SizeTest)
					if err != nil {
						panic(err)
					}
					return kk
				},
				Golden:  golden,
				Tol:     k.Tolerance(),
				Width:   k.Width(),
				Workers: 2,
			}
			vanilla := base
			want, err := campaign.Exhaustive(vanilla)
			if err != nil {
				t.Fatal(err)
			}
			for _, sched := range []campaign.Sched{campaign.SchedDynamic, campaign.SchedStatic} {
				cfg := base
				cfg.Replay = true
				cfg.Sched = sched
				got, err := campaign.Exhaustive(cfg)
				if err != nil {
					t.Fatalf("sched %v: %v", sched, err)
				}
				if len(got.Kinds) != len(want.Kinds) {
					t.Fatalf("sched %v: %d records, want %d", sched, len(got.Kinds), len(want.Kinds))
				}
				for i := range want.Kinds {
					if got.Kinds[i] != want.Kinds[i] {
						t.Fatalf("sched %v: record %d (site %d, bit %d) = %v, want %v",
							sched, i, i/cfg.Width, i%cfg.Width, got.Kinds[i], want.Kinds[i])
					}
				}
			}
		})
	}
}

// TestReplaySpacingByteIdentical checks the periodic-checkpoint variant:
// coarser snapshot spacing changes only which boundary each experiment
// resumes from, never the classification.
func TestReplaySpacingByteIdentical(t *testing.T) {
	k, err := kernels.New("cg", kernels.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := trace.Golden(k)
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.Config{
		Factory: func() trace.Program {
			kk, err := kernels.New("cg", kernels.SizeTest)
			if err != nil {
				panic(err)
			}
			return kk
		},
		Golden:  golden,
		Tol:     k.Tolerance(),
		Bits:    8, // trimmed fault population keeps the matrix quick
		Workers: 2,
	}
	want, err := campaign.Exhaustive(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{1, 7, 64} {
		cfg := base
		cfg.Replay = true
		cfg.ReplayEvery = every
		got, err := campaign.Exhaustive(cfg)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		for i := range want.Kinds {
			if got.Kinds[i] != want.Kinds[i] {
				t.Fatalf("every=%d: record %d = %v, want %v", every, i, got.Kinds[i], want.Kinds[i])
			}
		}
	}
}

// TestReplayFeatureTogglesByteIdentical walks the tentpole's feature
// toggles — snapshot pool, per-site second tier, reconvergence early
// exit — over the delta-restore kernels at both element widths (stencil
// is float64, stencil32 float32) plus a dense non-delta kernel, and
// requires every combination to reproduce the vanilla ground truth
// byte for byte. Each toggle changes only where a prefix comes from or
// when a run is allowed to stop early, never what gets classified.
func TestReplayFeatureTogglesByteIdentical(t *testing.T) {
	toggles := []struct {
		name string
		mut  func(*campaign.Config)
	}{
		{"default", func(*campaign.Config) {}},
		{"no-pool", func(c *campaign.Config) { c.ReplayPool = -1 }},
		{"no-site-snap", func(c *campaign.Config) { c.ReplaySiteSnap = -1 }},
		{"no-converge", func(c *campaign.Config) { c.ReplayConverge = -1 }},
		{"all-off", func(c *campaign.Config) {
			c.ReplayPool, c.ReplaySiteSnap, c.ReplayConverge = -1, -1, -1
		}},
	}
	for _, name := range []string{"stencil", "stencil32", "cg"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := kernelConfig(t, name, 2)
			base.Replay = false
			want, err := campaign.Exhaustive(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, tg := range toggles {
				cfg := kernelConfig(t, name, 2)
				tg.mut(&cfg)
				got, err := campaign.Exhaustive(cfg)
				if err != nil {
					t.Fatalf("%s: %v", tg.name, err)
				}
				for i := range want.Kinds {
					if got.Kinds[i] != want.Kinds[i] {
						t.Fatalf("%s: record %d (site %d, bit %d) = %v, want %v",
							tg.name, i, i/cfg.Width, i%cfg.Width, got.Kinds[i], want.Kinds[i])
					}
				}
			}
		})
	}
}

// plainProg is a program that deliberately does NOT implement
// trace.Snapshotter, to pin the transparent-fallback contract.
type plainProg struct {
	inputs []float64
}

func (p *plainProg) Name() string { return "plain" }

func (p *plainProg) Run(ctx *trace.Ctx) []float64 {
	s := 0.0
	for _, v := range p.inputs {
		v = ctx.Store(v)
		s = ctx.Store(s + v)
	}
	return []float64{s}
}

// TestReplayFallbackNonSnapshotter checks that Replay on a program
// without Snapshot/Restore silently runs the vanilla path — same
// records, zero replay telemetry.
func TestReplayFallbackNonSnapshotter(t *testing.T) {
	mk := func() trace.Program { return &plainProg{inputs: []float64{1, 2, 3, 4, 5}} }
	golden, err := trace.Golden(mk())
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	cfg := campaign.Config{
		Factory:   mk,
		Golden:    golden,
		Tol:       1e-12,
		Workers:   2,
		Replay:    true,
		Collector: col,
	}
	got, err := campaign.Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Exhaustive(campaign.Config{Factory: mk, Golden: golden, Tol: 1e-12, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Kinds {
		if got.Kinds[i] != want.Kinds[i] {
			t.Fatalf("record %d = %v, want %v", i, got.Kinds[i], want.Kinds[i])
		}
	}
	snap := col.Snapshot()
	if snap.Replay.SnapshotHits != 0 || snap.Replay.SnapshotMisses != 0 || snap.Replay.StoresSkipped != 0 {
		t.Errorf("fallback campaign recorded replay activity: %+v", snap.Replay)
	}
}

// TestReplayTelemetryCounts pins the counter arithmetic for the densest
// policy (every=1, per-site snapshots): each site past the first costs
// exactly one snapshot rebuild — seeded from the boundary pool or the
// golden prefix, the split is scheduling-dependent but the total is not —
// and serves its remaining flips from the second-tier (per-site) cache.
// The skipped-store total is the sum of every experiment's prefix length.
func TestReplayTelemetryCounts(t *testing.T) {
	k, err := kernels.New("matmul", kernels.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := trace.Golden(k)
	if err != nil {
		t.Fatal(err)
	}
	const bitsN = 16
	col := telemetry.New()
	_, err = campaign.Exhaustive(campaign.Config{
		Factory: func() trace.Program {
			kk, err := kernels.New("matmul", kernels.SizeTest)
			if err != nil {
				panic(err)
			}
			return kk
		},
		Golden:    golden,
		Tol:       k.Tolerance(),
		Bits:      bitsN,
		Workers:   3,
		Replay:    true,
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := int64(golden.Sites())
	snap := col.Snapshot()
	wantMisses := sites - 1 // site 0 resumes from nothing; every other site extends once
	wantHits := (sites - 1) * (bitsN - 1)
	wantSkipped := bitsN * sites * (sites - 1) / 2
	if snap.Replay.SnapshotMisses != wantMisses {
		t.Errorf("misses = %d, want %d", snap.Replay.SnapshotMisses, wantMisses)
	}
	if snap.Replay.SnapshotHits != wantHits {
		t.Errorf("hits = %d, want %d", snap.Replay.SnapshotHits, wantHits)
	}
	if snap.Replay.StoresSkipped != wantSkipped {
		t.Errorf("stores skipped = %d, want %d", snap.Replay.StoresSkipped, wantSkipped)
	}
	// Tier decomposition: with per-site snapshots on (the default) every
	// cache hit is a second-tier hit, and the coarse hits/misses are
	// exactly the sums of their fine-grained buckets.
	if snap.Replay.Tier2Hits != wantHits || snap.Replay.Tier1Hits != 0 {
		t.Errorf("tier hits = %d/%d, want %d second-tier and 0 boundary",
			snap.Replay.Tier1Hits, snap.Replay.Tier2Hits, wantHits)
	}
	if got := snap.Replay.PoolHits + snap.Replay.PrefixMisses; got != wantMisses {
		t.Errorf("pool + prefix rebuilds = %d, want %d", got, wantMisses)
	}
	if snap.Replay.DeltaRestores != 0 {
		t.Errorf("delta restores = %d on a kernel without RestoreDelta", snap.Replay.DeltaRestores)
	}
}
