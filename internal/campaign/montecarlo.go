package campaign

import (
	"fmt"
	"math"

	"ftb/internal/outcome"
	"ftb/internal/rng"
)

// MCEstimate is the result of a traditional Monte Carlo fault-injection
// campaign (the paper's baseline, §3.1): a whole-program SDC-ratio
// estimate with a confidence interval, and nothing else — uniform
// sampling "does not provide information on code regions with no
// samples".
type MCEstimate struct {
	Samples       int
	Counts        outcome.Counts
	SDCRatio      float64
	CILow, CIHigh float64 // 95% Wilson score interval for the SDC ratio
	SitesCovered  int     // distinct sites that received ≥1 injection
}

// MonteCarlo runs the baseline campaign: k experiments drawn uniformly
// without replacement from the (site × bit) space, classified, and
// summarized as an overall SDC ratio with a 95% confidence interval.
// The injections run on the engine (through RunPairs), so the sampler
// inherits its cancellation (cfg.Context), progress observation
// (cfg.Observer), and scheduling behaviour.
func MonteCarlo(cfg Config, r *rng.Rand, k int) (*MCEstimate, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	space := norm.Golden.Sites() * norm.Bits
	if k < 1 || k > space {
		return nil, fmt.Errorf("campaign: Monte Carlo budget %d outside [1, %d]", k, space)
	}
	idx := r.SampleK(space, k)
	pairs := make([]Pair, k)
	for i, v := range idx {
		pairs[i] = PairAt(v, norm.Bits)
	}
	recs, err := RunPairs(cfg, pairs)
	if err != nil {
		return nil, err
	}
	est := &MCEstimate{Samples: k}
	seen := make(map[int]struct{}, k)
	for _, rec := range recs {
		est.Counts.Add(rec.Kind)
		seen[rec.Site] = struct{}{}
	}
	est.SitesCovered = len(seen)
	est.SDCRatio = est.Counts.SDCRatio()
	est.CILow, est.CIHigh = wilson(est.Counts[outcome.SDC], k)
	return est, nil
}

// wilson returns the 95% Wilson score interval for successes/trials.
func wilson(successes, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th percentile of the standard normal
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MCSamplesForHalfWidth returns the approximate uniform-sampling budget a
// Monte Carlo campaign needs so its 95% interval half-width is at most
// halfWidth, given an anticipated SDC ratio p (use 0.5 for the worst
// case). This is the classic n = z²p(1−p)/w² sizing rule the statistical
// fault-injection literature uses.
func MCSamplesForHalfWidth(p, halfWidth float64) int {
	if halfWidth <= 0 {
		panic("campaign: non-positive half width")
	}
	if p < 0 || p > 1 {
		panic("campaign: SDC ratio outside [0,1]")
	}
	const z = 1.959963984540054
	n := z * z * p * (1 - p) / (halfWidth * halfWidth)
	return int(math.Ceil(n))
}
