package campaign

import (
	"strings"
	"testing"

	"ftb/internal/outcome"
	"ftb/internal/trace"
)

// goldenWithSites builds a minimal golden run with the given site count.
func goldenWithSites(n int) *trace.GoldenRun {
	return &trace.GoldenRun{Trace: make([]float64, n), Output: []float64{0}}
}

func validGT(sites, bits, width int) *GroundTruth {
	return &GroundTruth{
		SitesN: sites,
		BitsN:  bits,
		WidthN: width,
		Kinds:  make([]outcome.Kind, sites*bits),
	}
}

func TestValidateAccepts(t *testing.T) {
	g := goldenWithSites(4)
	for _, gt := range []*GroundTruth{
		validGT(4, 64, 64),
		validGT(4, 32, 32),
		validGT(4, 8, 64),
		{SitesN: 4, BitsN: 64, Kinds: make([]outcome.Kind, 4*64)}, // legacy zero width defaults to 64
	} {
		if err := gt.Validate(g); err != nil {
			t.Errorf("Validate(%dx%d w%d) = %v, want nil", gt.SitesN, gt.BitsN, gt.WidthN, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	g := goldenWithSites(4)
	cases := []struct {
		name string
		gt   *GroundTruth
		want string
	}{
		{"site count", validGT(3, 64, 64), "sites"},
		{"bad width", validGT(4, 16, 16), "width"},
		{"bits above width", validGT(4, 48, 32), "bits"},
		{"zero bits", &GroundTruth{SitesN: 4, BitsN: 0, WidthN: 64}, "bits"},
		{"short kinds", &GroundTruth{SitesN: 4, BitsN: 64, WidthN: 64, Kinds: make([]outcome.Kind, 4*64-1)}, "records"},
		{"long kinds", &GroundTruth{SitesN: 4, BitsN: 64, WidthN: 64, Kinds: make([]outcome.Kind, 4*64+3)}, "records"},
	}
	bad := validGT(4, 64, 64)
	bad.Kinds[130] = outcome.Kind(outcome.NumKinds)
	cases = append(cases, struct {
		name string
		gt   *GroundTruth
		want string
	}{"invalid kind", bad, "invalid outcome kind"})

	for _, c := range cases {
		err := c.gt.Validate(g)
		if err == nil {
			t.Errorf("%s: Validate = nil, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestValidateInvalidKindCoordinates checks the error pinpoints the bad
// record's (site, bit) coordinates, which is what makes a corrupt shard
// response debuggable.
func TestValidateInvalidKindCoordinates(t *testing.T) {
	gt := validGT(4, 64, 64)
	gt.Kinds[2*64+7] = outcome.Kind(200)
	err := gt.Validate(goldenWithSites(4))
	if err == nil {
		t.Fatal("Validate accepted an invalid kind")
	}
	for _, want := range []string{"site 2", "bit 7", "200"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate error %q missing %q", err, want)
		}
	}
}

func TestFrontierMerge(t *testing.T) {
	var f Frontier
	if f.Current() != 0 || f.Pending() != 0 {
		t.Fatalf("zero frontier = (%d, %d), want (0, 0)", f.Current(), f.Pending())
	}
	if adv := f.RangeDone(4, 8); adv {
		t.Error("out-of-order range advanced the frontier")
	}
	if f.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", f.Pending())
	}
	if adv := f.RangeDone(0, 4); !adv {
		t.Error("prefix range did not advance the frontier")
	}
	if f.Current() != 8 {
		t.Errorf("frontier = %d, want 8 (chained through the pending range)", f.Current())
	}
	// A long out-of-order tail collapses in one advance.
	f.RangeDone(12, 16)
	f.RangeDone(16, 20)
	if f.Current() != 8 {
		t.Errorf("frontier = %d, want 8", f.Current())
	}
	if adv := f.RangeDone(8, 12); !adv || f.Current() != 20 {
		t.Errorf("RangeDone(8,12) = %v with frontier %d, want advance to 20", adv, f.Current())
	}
	if f.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", f.Pending())
	}
}
