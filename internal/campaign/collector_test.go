// Engine↔collector integration tests, written as an external test
// package so they exercise exactly the public surface the facade uses
// (Config.Collector plus the campaign entry points). The Makefile race
// target runs this package, so these tests double as the "collector under
// -race with 8 workers" proof at engine level.
package campaign_test

import (
	"errors"
	"testing"

	"ftb/internal/campaign"
	"ftb/internal/outcome"
	"ftb/internal/telemetry"
	"ftb/internal/trace"
)

// chain is the minimal instrumented program: n dependent stores.
type chain struct{ n int }

func (p *chain) Name() string { return "chain" }

func (p *chain) Run(ctx *trace.Ctx) []float64 {
	v := 1.0
	for i := 0; i < p.n; i++ {
		v = ctx.Store(v + 0.5)
	}
	return []float64{v}
}

func collectorConfig(n, workers int) campaign.Config {
	g, err := trace.Golden(&chain{n: n})
	if err != nil {
		panic(err)
	}
	return campaign.Config{
		Factory: func() trace.Program { return &chain{n: n} },
		Golden:  g,
		Tol:     1e-9,
		Workers: workers,
		Batch:   4, // small batches: all 8 workers participate
	}
}

// TestEngineFeedsCollector runs a full campaign on 8 workers with a
// collector attached and checks that every aggregate agrees exactly with
// the engine's own results.
func TestEngineFeedsCollector(t *testing.T) {
	cfg := collectorConfig(32, 8)
	col := telemetry.New()
	cfg.Collector = col

	pairs := campaign.AllPairs(cfg.Golden.Sites(), 64)
	recs, err := campaign.RunPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}

	var want outcome.Counts
	for _, r := range recs {
		want.Add(r.Kind)
	}
	s := col.Snapshot()
	if s.Campaigns != 1 {
		t.Errorf("campaigns = %d, want 1", s.Campaigns)
	}
	if s.Experiments != int64(len(pairs)) {
		t.Errorf("experiments = %d, want %d", s.Experiments, len(pairs))
	}
	got := telemetry.OutcomeCounts{
		Masked: int64(want[outcome.Masked]),
		SDC:    int64(want[outcome.SDC]),
		Crash:  int64(want[outcome.Crash]),
	}
	if s.Outcomes != got {
		t.Errorf("collector outcomes %+v != campaign records %+v", s.Outcomes, got)
	}
	if s.RunLatency.Count != int64(len(pairs)) {
		t.Errorf("latency observations = %d, want %d", s.RunLatency.Count, len(pairs))
	}
	var perWorker int64
	for _, w := range s.Workers {
		perWorker += w.Experiments
	}
	if perWorker != int64(len(pairs)) {
		t.Errorf("per-worker sum = %d, want %d", perWorker, len(pairs))
	}
	// How many workers run experiments is timing-dependent (a fast worker
	// can drain a short queue alone), so only the conservation law above is
	// asserted; telemetry's own concurrency test pins per-worker counting.
	if len(s.Workers) == 0 {
		t.Error("no per-worker experiment counts recorded")
	}
	if s.QueueWait.Count == 0 {
		t.Error("no queue-wait observations recorded")
	}
	ph, ok := s.Phases["classify"]
	if !ok {
		t.Fatalf("phases = %v, want classify", s.Phases)
	}
	if ph.Experiments != int64(len(pairs)) || ph.Campaigns != 1 {
		t.Errorf("classify phase = %+v", ph)
	}
	if s.WallSeconds <= 0 {
		t.Errorf("wall-clock = %g, want > 0", s.WallSeconds)
	}
	if s.Gauges["active_campaigns"] != 0 || s.Gauges["active_workers"] != 0 {
		t.Errorf("gauges nonzero after completion: %v", s.Gauges)
	}
}

// TestCollectorMatchesExhaustive pins the acceptance identity: the
// collector's outcome counters equal the exhaustive campaign's ground
// truth tallies exactly.
func TestCollectorMatchesExhaustive(t *testing.T) {
	cfg := collectorConfig(16, 8)
	col := telemetry.New()
	cfg.Collector = col
	gt, err := campaign.Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overall := gt.Overall()
	s := col.Snapshot()
	if s.Outcomes.Masked != int64(overall[outcome.Masked]) ||
		s.Outcomes.SDC != int64(overall[outcome.SDC]) ||
		s.Outcomes.Crash != int64(overall[outcome.Crash]) {
		t.Errorf("collector %+v != ground truth %v", s.Outcomes, overall)
	}
	if s.Experiments != int64(overall.Total()) {
		t.Errorf("experiments = %d, want %d", s.Experiments, overall.Total())
	}
	if s.Phases["exhaustive"].Experiments != s.Experiments {
		t.Errorf("exhaustive phase = %+v", s.Phases["exhaustive"])
	}
}

// mismatchProg stores one extra site when the injection perturbs its
// first value, tripping the engine's trace-mismatch check.
type mismatchProg struct{ base *chain }

func (p *mismatchProg) Name() string { return "mismatch" }

func (p *mismatchProg) Run(ctx *trace.Ctx) []float64 {
	out := p.base.Run(ctx)
	if out[0] != 1.0+0.5*float64(p.base.n) {
		ctx.Store(out[0]) // diverged: execute a non-golden store count
	}
	return out
}

func TestCollectorCountsMismatch(t *testing.T) {
	g, err := trace.Golden(&mismatchProg{base: &chain{n: 8}})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	cfg := campaign.Config{
		Factory:   func() trace.Program { return &mismatchProg{base: &chain{n: 8}} },
		Golden:    g,
		Tol:       1e-9,
		Workers:   2,
		Collector: col,
	}
	// A mantissa flip on site 0 changes the output without crashing, so
	// the extra store executes and the trace length diverges from golden.
	_, err = campaign.RunPairs(cfg, []campaign.Pair{{Site: 0, Bit: 51}})
	if !errors.Is(err, trace.ErrTraceMismatch) {
		t.Fatalf("err = %v, want trace mismatch", err)
	}
	if s := col.Snapshot(); s.Outcomes.Mismatch != 1 {
		t.Errorf("mismatch counter = %d, want 1", s.Outcomes.Mismatch)
	}
}
