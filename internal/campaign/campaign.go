// Package campaign executes fault-injection campaigns: the exhaustive
// ground-truth campaign (every bit of every dynamic instruction), sampled
// campaigns over chosen (site, bit) pairs, and propagation-collection runs
// that feed the boundary-inference algorithm.
//
// Campaigns are embarrassingly parallel and run on the package's
// execution engine (engine.go): a context-aware dispatcher that feeds a
// goroutine worker pool from a shared work queue in small batches
// (dynamic scheduling; see Sched). Each worker owns a private program
// instance (kernels keep mutable work buffers) and a private trace
// context; results are merged in input order, so campaign output is
// byte-identical regardless of GOMAXPROCS, worker count, or scheduling
// mode. Campaigns are cancellable through Config.Context, observable
// through Config.Observer, and propagate the first worker error
// uniformly from every entry point.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"

	"ftb/internal/bits"
	"ftb/internal/obs"
	"ftb/internal/outcome"
	"ftb/internal/telemetry"
	"ftb/internal/trace"
)

// Pair identifies one fault-injection experiment: flip bit Bit of the
// value stored by dynamic instruction Site.
type Pair struct {
	Site int
	Bit  uint8
}

// PairAt maps a flat sample-space index to its experiment under the
// canonical row-major (site-major, bit-minor) layout. Every enumeration
// of the (site × bit) space — exhaustive campaigns, uniform sampling,
// Monte Carlo draws — must go through this mapping so fault-model
// indexing can never drift between them.
func PairAt(index, bitsN int) Pair {
	return Pair{Site: index / bitsN, Bit: uint8(index % bitsN)}
}

// Record is the classified result of one experiment.
type Record struct {
	Pair
	Kind   outcome.Kind
	InjErr float64 // |flipped − original| at the injection site (+Inf if unsafe)
	OutErr float64 // L∞ output deviation (+Inf for crashes)
}

// Campaign sizing limits.
const (
	// MaxWorkers is the largest accepted Config.Workers. Campaign
	// workers each run a full program instance; pools beyond this bound
	// indicate a configuration bug (e.g. sites passed as workers), not a
	// bigger machine.
	MaxWorkers = 1024
	// DefaultBatch is the number of experiments a worker claims from the
	// queue at a time when Config.Batch is zero. Small enough that
	// cancellation and progress stay responsive, large enough that queue
	// contention is negligible next to a program execution.
	DefaultBatch = 32
	// DefaultReplayEvery is the snapshot spacing (in sites) used when
	// Config.Replay is on and ReplayEvery is zero: one checkpoint per
	// site-prefix boundary, the densest (and fastest) policy.
	DefaultReplayEvery = 1
)

// Config describes the campaign target.
type Config struct {
	// Factory creates an independent program instance; it is called once
	// per worker. Instances must produce identical store sequences.
	Factory func() trace.Program
	// Golden is the fault-free run of the program.
	Golden *trace.GoldenRun
	// Tol is the acceptable L∞ output deviation T.
	Tol float64
	// Bits is the number of fault coordinates probed per site (default:
	// the Model's full population at Width — the word width for the
	// default single-bit-flip model).
	Bits int
	// Width is the IEEE-754 width of the program's data elements: 64 for
	// programs instrumented with Ctx.Store (the default) or 32 for
	// programs instrumented with Ctx.Store32. Bits may not exceed the
	// Model's population at this width.
	Width int
	// Model is the fault model applied at injection sites. The zero value
	// is the paper's single-bit flip; see bits.FaultModel for the
	// multi/burst/region/stuck-at generalizations. Pair.Bit is then a
	// region-relative fault coordinate in [0, Model.BitsPerSite(Width)).
	Model bits.FaultModel
	// Workers caps the pool size (default runtime.GOMAXPROCS(0), at most
	// MaxWorkers).
	Workers int
	// Sched selects the work-distribution strategy (default
	// SchedDynamic). Identical configs produce identical results under
	// either mode; only wall-clock time differs.
	Sched Sched
	// Batch is the scheduling granularity in experiments (default
	// DefaultBatch): the size of a dynamic queue claim, and the
	// cancellation-check and progress-event interval in both modes.
	Batch int
	// Context, when non-nil, cancels the campaign: entry points return
	// the context's error promptly (within one in-flight experiment per
	// worker) without leaking goroutines. Items completed before the
	// cancellation are still valid.
	Context context.Context
	// Observer, when non-nil, receives structured progress events after
	// every completed batch. Callbacks run synchronously on worker
	// goroutines under an internal lock: they MUST be cheap and
	// non-blocking, or they will serialize the pool.
	Observer Observer
	// Collector, when non-nil, receives the engine's telemetry: per-run
	// latency, outcome counts, batch queue wait, per-worker experiment
	// counts, and per-campaign wall-clock, keyed by campaign phase. Unlike
	// the Observer path it is fed from the experiment hot path, which is
	// why it is the concrete lock-cheap collector rather than an
	// interface. One collector may serve many campaigns concurrently.
	Collector *telemetry.Collector
	// Tracer, when non-nil, is called once per engine worker to build
	// that worker's propagation tracer, and switches classification
	// campaigns (RunPairs, Exhaustive, ExhaustiveCheckpointed) into diff
	// mode: every experiment streams its per-site |golden − corrupted|
	// deltas to the worker's tracer between a BeginRun/EndRun pair, so
	// trajectories can be recorded without a second campaign. Records and
	// outcome counts are identical to the untraced path; only execution
	// cost changes. A factory returning nil leaves that worker untraced.
	// Propagate ignores Tracer — its PropagationSink already owns the
	// diff stream.
	Tracer func(worker int) Tracer
	// Replay enables checkpointed prefix replay: a worker whose program
	// implements trace.Snapshotter snapshots the kernel state at the
	// injection site's prefix boundary and replays every experiment at
	// that site from the snapshot, instead of re-executing the prefix
	// from the program entry. Classification output is byte-identical to
	// a vanilla campaign; only execution cost changes. Programs that do
	// not implement Snapshotter fall back to the vanilla path silently.
	Replay bool
	// ReplayEvery is the snapshot spacing in sites when Replay is on
	// (default DefaultReplayEvery): an experiment at site s resumes from
	// the boundary s − s%ReplayEvery. 1 checkpoints every site; larger
	// values trade replayed stores for fewer snapshot copies, which can
	// win when kernel state is large relative to the per-site store cost.
	ReplayEvery int
	// ReplayPool bounds the per-worker pool of golden boundary snapshots
	// kept alongside the moving head snapshot (programs implementing
	// trace.MultiSnapshotter only). The pool seeds rebuilds when dynamic
	// scheduling hands a worker a batch behind its head, and provides the
	// comparison targets for reconvergence probes. 0 selects
	// DefaultReplayPool; negative disables the pool.
	ReplayPool int
	// ReplaySiteSnap controls second-tier per-site snapshots: when on,
	// the worker advances once from the prefix boundary to the injection
	// site, snapshots there, and every experiment at that site restores
	// with zero re-executed stores. 0 (the default) enables them;
	// negative keeps the head at the boundary only.
	ReplaySiteSnap int
	// ReplayConverge controls the reconvergence early-exit: untraced
	// replay experiments on programs implementing trace.StateComparer
	// track their deviation from the golden trace and, at a quiet pooled
	// boundary whose live state compares bit-identical to the pooled
	// golden state, return the golden output immediately instead of
	// executing the suffix. Classification is byte-identical either way
	// (bit-equality of the full state plus fixed control flow imply the
	// remaining stores replay the golden run exactly). 0 (the default)
	// enables it; negative disables. Requires the pool.
	ReplayConverge int
	// Logger, when non-nil, receives the engine's structured event log:
	// campaign start/stop, checkpoint saves and resumes, and trace-
	// mismatch aborts, at conventional slog levels (Debug for lifecycle,
	// Warn for aborts). Nil discards events; the engine never logs from
	// the per-experiment hot path.
	Logger *slog.Logger
	// Spans, when non-nil, records the campaign's hierarchical execution
	// spans: one phase span, chained queue-wait/batch spans per worker,
	// sampled experiment spans, and typed sub-spans (checkpoint restore,
	// compose predict/tail/fallback). Like Collector it is fed from the
	// hot path, so it is the concrete striped recorder, not an interface.
	Spans *obs.Recorder
	// SpanParent is the span ID the phase span attaches to (0 = root),
	// typically a facade-level campaign span or, on a cluster worker, 0
	// so the coordinator can graft the lease's spans under its own tree.
	SpanParent uint64
	// SpanSample records one experiment span (with sub-spans) per this
	// many experiments per worker (0 = obs.DefaultSampleEvery).
	// Unsampled experiments cost one counter increment and no clock
	// reads, which is what keeps span overhead inside the ≤5% budget.
	SpanSample int
}

// Tracer consumes one worker's propagation trajectories. It extends
// trace.DiffSink with per-run boundaries carrying campaign coordinates:
// the engine calls BeginRun before each traced experiment (run is the
// campaign-wide experiment index, worker the engine worker executing
// it), streams the per-site deltas through Observe, and closes the run
// with its classified outcome via EndRun (crashSite is -1 when the run
// did not crash). A Tracer is owned by a single worker and is never
// called concurrently; *proptrace.Recorder implements the interface.
// On a campaign abort (error or cancellation) an opened run may never
// see its EndRun — implementations must tolerate dropping it.
type Tracer interface {
	trace.DiffSink
	BeginRun(run, worker int, site int, bit uint8)
	EndRun(outcome string, injErr, outErr float64, crashSite int)
}

func (c *Config) normalized() (Config, error) {
	out := *c
	if out.Factory == nil {
		return out, errors.New("campaign: Config.Factory is required")
	}
	if out.Golden == nil {
		return out, errors.New("campaign: Config.Golden is required")
	}
	if out.Tol <= 0 {
		return out, fmt.Errorf("campaign: tolerance %g must be positive", out.Tol)
	}
	if out.Width == 0 {
		out.Width = 64
	}
	if out.Width != 32 && out.Width != 64 {
		return out, fmt.Errorf("campaign: width %d must be 32 or 64", out.Width)
	}
	if err := out.Model.Validate(out.Width); err != nil {
		return out, fmt.Errorf("campaign: %w", err)
	}
	pop := out.Model.BitsPerSite(out.Width)
	if out.Bits == 0 {
		out.Bits = pop
	}
	if out.Bits < 1 || out.Bits > pop {
		return out, fmt.Errorf("campaign: bits %d outside [1, %d] (fault model %q at width %d)",
			out.Bits, pop, out.Model, out.Width)
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Workers > MaxWorkers {
		return out, fmt.Errorf("campaign: workers %d above limit %d", out.Workers, MaxWorkers)
	}
	if out.Sched != SchedDynamic && out.Sched != SchedStatic {
		return out, fmt.Errorf("campaign: unknown scheduling mode %d", out.Sched)
	}
	if out.Batch == 0 {
		out.Batch = DefaultBatch
		if out.Replay {
			// Site-aligned claims: exhaustive campaigns enumerate pairs
			// site-major, so a batch of Bits experiments is exactly one
			// site's worth of flips — each snapshot a worker builds is
			// used for a full claim before the queue hands it elsewhere.
			out.Batch = out.Bits
		}
	}
	if out.Batch < 1 {
		return out, fmt.Errorf("campaign: batch %d must be positive", out.Batch)
	}
	if out.ReplayEvery == 0 {
		out.ReplayEvery = DefaultReplayEvery
	}
	if out.ReplayEvery < 1 {
		return out, fmt.Errorf("campaign: replay spacing %d must be positive", out.ReplayEvery)
	}
	if out.Context == nil {
		out.Context = context.Background()
	}
	if out.Logger == nil {
		out.Logger = slog.New(slog.DiscardHandler)
	}
	return out, nil
}

// validatePairs rejects experiments outside the program's (site ×
// population) space up front, so a bad selection fails loudly instead of
// panicking in a worker or silently probing the wrong site.
func validatePairs(cfg Config, pairs []Pair) error {
	sites := cfg.Golden.Sites()
	pop := cfg.Model.BitsPerSite(cfg.Width)
	for _, p := range pairs {
		if p.Site < 0 || p.Site >= sites {
			return fmt.Errorf("campaign: pair site %d outside [0, %d)", p.Site, sites)
		}
		if int(p.Bit) >= pop {
			return fmt.Errorf("campaign: pair coordinate %d outside the %d-coordinate fault population (model %q, width %d)",
				p.Bit, pop, cfg.Model, cfg.Width)
		}
	}
	return nil
}

// classify builds the Record for one completed injection run.
func classify(golden *trace.GoldenRun, tol float64, pair Pair, res trace.InjectResult) Record {
	return Record{
		Pair:   pair,
		Kind:   outcome.Classify(golden.Output, res.Output, tol, res.Crashed),
		InjErr: res.InjErr,
		OutErr: outcome.OutputError(golden.Output, res.Output, res.Crashed),
	}
}

// RunPair executes a single experiment with an existing context and
// program instance. It is the sequential building block the engine
// drives.
func RunPair(ctx *trace.Ctx, p trace.Program, golden *trace.GoldenRun, tol float64, pair Pair) Record {
	return classify(golden, tol, pair, trace.RunInject(ctx, p, pair.Site, uint(pair.Bit)))
}

// runPairChecked is RunPair plus the trace-mismatch check engine workers
// apply: a non-crashed run must execute exactly the golden number of
// stores, otherwise the factory built a different (or non-data-oblivious)
// program and the campaign must fail rather than classify garbage.
func runPairChecked(ctx *trace.Ctx, p trace.Program, golden *trace.GoldenRun, tol float64, pair Pair) (Record, error) {
	res := trace.RunInject(ctx, p, pair.Site, uint(pair.Bit))
	if !res.Crashed && ctx.Sites() != golden.Sites() {
		return Record{}, fmt.Errorf("%w: got %d, golden %d (program %q)",
			trace.ErrTraceMismatch, ctx.Sites(), golden.Sites(), p.Name())
	}
	return classify(golden, tol, pair, res), nil
}

// pairWorker is the per-goroutine state of a classification campaign.
type pairWorker struct {
	p      trace.Program
	ctx    trace.Ctx
	worker int
	tracer Tracer                      // nil when the campaign is untraced
	replay *replayCache                // nil when replay is off or unsupported
	rec    *telemetry.CampaignRecorder // nil when the campaign is uncollected
	sp     *obs.WorkerSpans            // nil-safe when the campaign records no spans
}

// newPairWorker builds one worker's state, attaching its tracer when the
// campaign records trajectories and its replay cache when the campaign
// replays prefixes and the program can snapshot. A program that does not
// implement trace.Snapshotter silently keeps the vanilla full-execution
// path — Replay is a pure optimization, never a capability requirement.
func newPairWorker(cfg Config, w int, rec *telemetry.CampaignRecorder, sp *obs.WorkerSpans) *pairWorker {
	pw := &pairWorker{p: cfg.Factory(), worker: w, rec: rec, sp: sp}
	pw.ctx.SetFaultModel(cfg.Model)
	if cfg.Tracer != nil {
		pw.tracer = cfg.Tracer(w)
	}
	if cfg.Replay {
		if s, ok := pw.p.(trace.Snapshotter); ok {
			pw.replay = newReplayCache(cfg, s)
		}
	}
	return pw
}

// chargeRestore records one prepared experiment's restore accounting:
// the typed obs sub-span (started at t) and the telemetry tier counters.
// Tier-1 and tier-2 hits count as snapshot hits; pool-seeded and
// golden-prefix rebuilds as misses, preserving the coarse hit/miss split
// alongside the finer attribution.
func chargeRestore(rec *telemetry.CampaignRecorder, sp *obs.WorkerSpans, worker int, t int64, pr prep) {
	cat := obs.CatRestore
	switch pr.tier {
	case tierSite:
		cat = obs.CatRestoreSite
	case tierPool:
		cat = obs.CatRestorePool
	case tierMiss:
		cat = obs.CatRestoreBuild
	}
	sp.Sub(cat, t, int64(pr.resume))
	if rec == nil {
		return
	}
	switch pr.tier {
	case tierBoundary:
		rec.RestoreTier1(worker)
	case tierSite:
		rec.RestoreTier2(worker)
	case tierPool:
		rec.RestorePool(worker)
	case tierMiss:
		rec.RestoreMiss(worker)
	default:
		return
	}
	if pr.delta {
		rec.DeltaRestore(worker)
	}
	rec.StoresSkipped(worker, int64(pr.resume))
}

// runChecked executes one experiment on this worker: the plain inject
// path when untraced, or the diff-mode path bracketed by the tracer's
// BeginRun/EndRun when a tracer is attached. Both paths apply the
// trace-mismatch check (diff mode performs it inside RunInjectDiff), so
// traced and untraced campaigns produce identical records and identical
// failures. With a replay cache, the experiment resumes from the site's
// prefix boundary snapshot instead of the program entry; records are
// identical either way. run is the campaign-wide experiment index tagged
// onto the trajectory.
func (w *pairWorker) runChecked(cfg Config, run int, pair Pair) (Record, error) {
	resume := 0
	if w.replay != nil {
		t := w.sp.SubClock()
		pr, err := w.replay.prepare(&w.ctx, pair.Site)
		chargeRestore(w.rec, w.sp, w.worker, t, pr)
		if err != nil {
			return Record{}, err
		}
		resume = pr.resume
	}
	if w.tracer == nil {
		// Untraced runs on a pooled, state-comparable kernel may prove
		// mid-run that they replay the golden suffix exactly and return
		// early with the golden output — byte-identical classification,
		// fewer executed stores. Traced runs never take this path: the
		// tracer needs the full delta stream.
		if w.replay != nil {
			if first, step, ok := w.replay.convergeSchedule(pair.Site, uint(pair.Bit)); ok {
				res, convergedAt, probes, err := trace.RunInjectConvergeFrom(
					&w.ctx, w.p, cfg.Golden, pair.Site, uint(pair.Bit), resume, first, step,
					w.replay.poolStateAt)
				if err != nil {
					return Record{}, err
				}
				w.replay.convergeResult(uint(pair.Bit), convergedAt, probes, res.Crashed)
				if w.rec != nil && convergedAt >= 0 {
					w.rec.Converge(w.worker, int64(cfg.Golden.Sites()-convergedAt))
				}
				return classify(cfg.Golden, cfg.Tol, pair, res), nil
			}
		}
		res := trace.RunInjectFrom(&w.ctx, w.p, pair.Site, uint(pair.Bit), resume)
		if !res.Crashed && w.ctx.Sites() != cfg.Golden.Sites() {
			return Record{}, fmt.Errorf("%w: got %d, golden %d (program %q)",
				trace.ErrTraceMismatch, w.ctx.Sites(), cfg.Golden.Sites(), w.p.Name())
		}
		return classify(cfg.Golden, cfg.Tol, pair, res), nil
	}
	w.tracer.BeginRun(run, w.worker, pair.Site, pair.Bit)
	res, err := trace.RunInjectDiffFrom(&w.ctx, w.p, cfg.Golden, pair.Site, uint(pair.Bit), w.tracer, resume)
	if err != nil {
		return Record{}, err
	}
	rec := classify(cfg.Golden, cfg.Tol, pair, res)
	crashAt := -1
	if res.Crashed {
		crashAt = res.CrashAt
	}
	w.tracer.EndRun(rec.Kind.String(), rec.InjErr, rec.OutErr, crashAt)
	return rec, nil
}

// RunPairs executes all experiments on the engine and returns their
// records in input order. The first worker error (e.g. a trace mismatch)
// cancels the remaining work and is returned; a cancelled Config.Context
// surfaces as its context error.
func RunPairs(cfg Config, pairs []Pair) ([]Record, error) {
	return RunPairsInPhase(cfg, pairs, "classify")
}

// RunPairsInPhase is RunPairs with an explicit telemetry/observer phase
// label. Cluster workers execute exhaustive-campaign shards through the
// pair path and use this to keep the shard's telemetry attributed to the
// campaign phase the coordinator is actually running, instead of every
// remote shard masquerading as "classify".
func RunPairsInPhase(cfg Config, pairs []Pair, phase string) ([]Record, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := validatePairs(cfg, pairs); err != nil {
		return nil, err
	}
	records := make([]Record, len(pairs))
	_, err = runEngine(cfg, phase, len(pairs),
		func(w int, rec *telemetry.CampaignRecorder, sp *obs.WorkerSpans) *pairWorker {
			return newPairWorker(cfg, w, rec, sp)
		},
		func(w *pairWorker, i int) (outcome.Kind, error) {
			rec, err := w.runChecked(cfg, i, pairs[i])
			if err != nil {
				return 0, err
			}
			records[i] = rec
			return rec.Kind, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	return records, nil
}

// PropagationSink extends trace.DiffSink with a per-run boundary so
// accumulators know which experiment the observations belong to.
type PropagationSink interface {
	trace.DiffSink
	// BeginRun is called before each run with the experiment's pair.
	BeginRun(pair Pair)
	// EndRun is called after each run with the classified record. delta
	// observations between BeginRun and EndRun belong to this experiment.
	EndRun(rec Record)
}

// propWorker is the per-goroutine state of a propagation campaign.
type propWorker struct {
	p    trace.Program
	ctx  trace.Ctx
	sink PropagationSink
}

// Propagate executes the given experiments in InjectDiff mode, streaming
// per-site propagation deltas to per-worker sinks created by newSink. The
// returned slice holds every sink that was actually used, so the caller
// can merge their accumulated state. Which worker (and therefore which
// sink) handles a given experiment depends on scheduling, but sink merges
// are max/sum folds over the same run set, so merged results stay
// deterministic.
//
// Propagate is typically applied to the masked subset of a sampled
// campaign: Algorithm 1 consumes only masked runs' propagation data.
func Propagate(cfg Config, pairs []Pair, newSink func() PropagationSink) ([]PropagationSink, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if newSink == nil {
		return nil, errors.New("campaign: newSink is required")
	}
	if err := validatePairs(cfg, pairs); err != nil {
		return nil, err
	}
	// Propagation campaigns own their diff stream through newSink; drop
	// any Tracer so the engine does not count these runs as trajectories.
	cfg.Tracer = nil
	sinks := make([]PropagationSink, cfg.Workers)
	_, err = runEngine(cfg, "propagate", len(pairs),
		func(w int, _ *telemetry.CampaignRecorder, _ *obs.WorkerSpans) *propWorker {
			sink := newSink()
			sinks[w] = sink
			pw := &propWorker{p: cfg.Factory(), sink: sink}
			pw.ctx.SetFaultModel(cfg.Model)
			return pw
		},
		func(w *propWorker, i int) (outcome.Kind, error) {
			pair := pairs[i]
			w.sink.BeginRun(pair)
			res, err := trace.RunInjectDiff(&w.ctx, w.p, cfg.Golden, pair.Site, uint(pair.Bit), w.sink)
			if err != nil {
				return 0, err
			}
			rec := classify(cfg.Golden, cfg.Tol, pair, res)
			w.sink.EndRun(rec)
			return rec.Kind, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	used := sinks[:0]
	for _, s := range sinks {
		if s != nil {
			used = append(used, s)
		}
	}
	return used, nil
}

// AllPairs enumerates the complete sample space: every bit of every site.
func AllPairs(sites, bitsPerSite int) []Pair {
	pairs := make([]Pair, 0, sites*bitsPerSite)
	for s := 0; s < sites; s++ {
		for b := 0; b < bitsPerSite; b++ {
			pairs = append(pairs, Pair{Site: s, Bit: uint8(b)})
		}
	}
	return pairs
}
