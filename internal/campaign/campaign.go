// Package campaign executes fault-injection campaigns: the exhaustive
// ground-truth campaign (every bit of every dynamic instruction), sampled
// campaigns over chosen (site, bit) pairs, and propagation-collection runs
// that feed the boundary-inference algorithm.
//
// Campaigns are embarrassingly parallel and run on a goroutine worker
// pool. Each worker owns a private program instance (kernels keep mutable
// work buffers) and a private trace context; results are merged in input
// order, so campaign output is deterministic regardless of GOMAXPROCS.
package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ftb/internal/outcome"
	"ftb/internal/trace"
)

// Pair identifies one fault-injection experiment: flip bit Bit of the
// value stored by dynamic instruction Site.
type Pair struct {
	Site int
	Bit  uint8
}

// Record is the classified result of one experiment.
type Record struct {
	Pair
	Kind   outcome.Kind
	InjErr float64 // |flipped − original| at the injection site (+Inf if unsafe)
	OutErr float64 // L∞ output deviation (+Inf for crashes)
}

// Config describes the campaign target.
type Config struct {
	// Factory creates an independent program instance; it is called once
	// per worker. Instances must produce identical store sequences.
	Factory func() trace.Program
	// Golden is the fault-free run of the program.
	Golden *trace.GoldenRun
	// Tol is the acceptable L∞ output deviation T.
	Tol float64
	// Bits is the number of bit positions per site (default Width).
	Bits int
	// Width is the IEEE-754 width of the program's data elements: 64 for
	// programs instrumented with Ctx.Store (the default) or 32 for
	// programs instrumented with Ctx.Store32. Bits may not exceed Width.
	Width int
	// Workers caps the pool size (default runtime.GOMAXPROCS(0)).
	Workers int
}

func (c *Config) normalized() (Config, error) {
	out := *c
	if out.Factory == nil {
		return out, errors.New("campaign: Config.Factory is required")
	}
	if out.Golden == nil {
		return out, errors.New("campaign: Config.Golden is required")
	}
	if out.Tol <= 0 {
		return out, fmt.Errorf("campaign: tolerance %g must be positive", out.Tol)
	}
	if out.Width == 0 {
		out.Width = 64
	}
	if out.Width != 32 && out.Width != 64 {
		return out, fmt.Errorf("campaign: width %d must be 32 or 64", out.Width)
	}
	if out.Bits == 0 {
		out.Bits = out.Width
	}
	if out.Bits < 1 || out.Bits > out.Width {
		return out, fmt.Errorf("campaign: bits %d outside [1, %d]", out.Bits, out.Width)
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out, nil
}

// RunPair executes a single experiment with an existing context and
// program instance. It is the sequential building block the pool drives.
func RunPair(ctx *trace.Ctx, p trace.Program, golden *trace.GoldenRun, tol float64, pair Pair) Record {
	res := trace.RunInject(ctx, p, pair.Site, uint(pair.Bit))
	return Record{
		Pair:   pair,
		Kind:   outcome.Classify(golden.Output, res.Output, tol, res.Crashed),
		InjErr: res.InjErr,
		OutErr: outcome.OutputError(golden.Output, res.Output, res.Crashed),
	}
}

// RunPairs executes all experiments in parallel and returns their records
// in input order.
func RunPairs(cfg Config, pairs []Pair) ([]Record, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	records := make([]Record, len(pairs))
	forEachChunk(cfg.Workers, len(pairs), func(worker, lo, hi int) error {
		p := cfg.Factory()
		var ctx trace.Ctx
		for i := lo; i < hi; i++ {
			records[i] = RunPair(&ctx, p, cfg.Golden, cfg.Tol, pairs[i])
		}
		return nil
	})
	return records, nil
}

// PropagationSink extends trace.DiffSink with a per-run boundary so
// accumulators know which experiment the observations belong to.
type PropagationSink interface {
	trace.DiffSink
	// BeginRun is called before each run with the experiment's pair.
	BeginRun(pair Pair)
	// EndRun is called after each run with the classified record. delta
	// observations between BeginRun and EndRun belong to this experiment.
	EndRun(rec Record)
}

// Propagate executes the given experiments in InjectDiff mode, streaming
// per-site propagation deltas to per-worker sinks created by newSink. The
// returned slice holds every sink that was actually used, so the caller
// can merge their accumulated state. Experiments are distributed across
// workers in contiguous chunks of the input.
//
// Propagate is typically applied to the masked subset of a sampled
// campaign: Algorithm 1 consumes only masked runs' propagation data.
func Propagate(cfg Config, pairs []Pair, newSink func() PropagationSink) ([]PropagationSink, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if newSink == nil {
		return nil, errors.New("campaign: newSink is required")
	}
	sinks := make([]PropagationSink, cfg.Workers)
	var firstErr atomic.Value
	forEachChunk(cfg.Workers, len(pairs), func(worker, lo, hi int) error {
		p := cfg.Factory()
		sink := newSink()
		sinks[worker] = sink
		var ctx trace.Ctx
		for i := lo; i < hi; i++ {
			pair := pairs[i]
			sink.BeginRun(pair)
			res, err := trace.RunInjectDiff(&ctx, p, cfg.Golden, pair.Site, uint(pair.Bit), sink)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return err
			}
			sink.EndRun(Record{
				Pair:   pair,
				Kind:   outcome.Classify(cfg.Golden.Output, res.Output, cfg.Tol, res.Crashed),
				InjErr: res.InjErr,
				OutErr: outcome.OutputError(cfg.Golden.Output, res.Output, res.Crashed),
			})
		}
		return nil
	})
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	used := sinks[:0]
	for _, s := range sinks {
		if s != nil {
			used = append(used, s)
		}
	}
	return used, nil
}

// forEachChunk splits n items into contiguous chunks, one per worker, and
// runs fn(worker, lo, hi) concurrently. Workers beyond n items get empty
// ranges and are not started.
func forEachChunk(workers, n int, fn func(worker, lo, hi int) error) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			_ = fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// AllPairs enumerates the complete sample space: every bit of every site.
func AllPairs(sites, bitsPerSite int) []Pair {
	pairs := make([]Pair, 0, sites*bitsPerSite)
	for s := 0; s < sites; s++ {
		for b := 0; b < bitsPerSite; b++ {
			pairs = append(pairs, Pair{Site: s, Bit: uint8(b)})
		}
	}
	return pairs
}
