// Compositional section campaigns (FastFlip-style): instead of running
// every (site × bit) experiment through the whole program suffix, run it
// only to the end of its own declared section, then predict the final
// outcome by chaining per-section error-transfer summaries — built once
// from a seeded calibration sample of full runs — and fall back to full
// execution whenever the summaries' evidence is not conclusive. Three
// within-section terminations need no prediction at all and are byte-
// exact by construction: a crash before the section boundary (the
// truncated run is a prefix-identical replay of the full run), an error
// that is exactly zero at the boundary (the remaining run is then
// byte-identical to the golden run, so the outcome is Masked), and an
// injection in the last section (truncation is the full run).
package campaign

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ftb/internal/obs"
	"ftb/internal/outcome"
	"ftb/internal/rng"
	"ftb/internal/sections"
	"ftb/internal/telemetry"
	"ftb/internal/trace"
)

// ComposeOptions configures ComposedExhaustive.
type ComposeOptions struct {
	// Sections is the program's compositional section layout; it must
	// Validate against the golden run's site count.
	Sections []sections.Section
	// Calibration is the fraction of the (site × bit) space sampled for
	// full cross-boundary calibration runs (default 0.02). Calibration
	// outcomes are exact and double as campaign results.
	Calibration float64
	// Seed drives the deterministic calibration sample.
	Seed uint64
	// MinSamples, Safety, and Slack tune the predictor; see
	// sections.Params.
	MinSamples int
	Safety     float64
	Slack      float64
	// Prior holds persisted summaries from an earlier campaign; those
	// whose section identity hashes still match are reused, and their
	// sections are not re-calibrated (incremental re-analysis).
	Prior *sections.Library
	// Truth, when non-nil, is exhaustive ground truth to validate every
	// result against; disagreements are counted in Report.Mismatches.
	Truth *GroundTruth
}

// SectionReport is one section's share of a composed campaign.
type SectionReport struct {
	Section sections.Section `json:"section"`
	Hash    uint64           `json:"hash,string"`
	// Reused reports that the section's summary was taken from Prior
	// (identity hash matched) instead of being rebuilt.
	Reused bool `json:"reused"`
	// Experiments counts the campaign experiments injected in this
	// section; Exact, Predicted, and Fallbacks partition them (plus the
	// section's share of the calibration sample).
	Experiments int `json:"experiments"`
	Calibrated  int `json:"calibrated"`
	Exact       int `json:"exact"`
	Predicted   int `json:"predicted"`
	Fallbacks   int `json:"fallbacks"`
}

// ComposeReport is the accounting of a composed exhaustive campaign.
type ComposeReport struct {
	// Experiments is the campaign size (sites × bits).
	Experiments int `json:"experiments"`
	// Calibrated counts full calibration runs (exact results).
	Calibrated int `json:"calibrated"`
	// ExactCrash / ExactZero / ExactLast count the by-construction-exact
	// truncated terminations: crash inside the injection's section, an
	// error dead at the section boundary, and last-section injections.
	ExactCrash int `json:"exact_crash"`
	ExactZero  int `json:"exact_zero"`
	ExactLast  int `json:"exact_last"`
	// Predicted tallies the outcomes decided by summary composition.
	Predicted outcome.Counts `json:"predicted"`
	// Fallbacks counts experiments the predictor declined and the
	// campaign executed in full (exact results); FallbackReasons breaks
	// them down by what evidence was missing (indexed by
	// sections.FallbackReason).
	Fallbacks       int                      `json:"fallbacks"`
	FallbackReasons [sections.NumReasons]int `json:"fallback_reasons"`
	// FallbackKinds tallies what the declined experiments' full runs
	// resolved to: the Masked share is the predictor's remaining
	// headroom, the rest is the irreducible population no summary
	// evidence could certify.
	FallbackKinds outcome.Counts `json:"fallback_kinds"`
	// Mismatches counts disagreements with Truth (0 when Truth is nil).
	Mismatches int `json:"mismatches"`
	// SummariesReused / SummariesBuilt partition the downstream-usable
	// sections (every section but the first) by provenance.
	SummariesReused int `json:"summaries_reused"`
	SummariesBuilt  int `json:"summaries_built"`
	// StoresExecuted is the exact number of tracked stores the campaign
	// executed (injection runs only, excluding replay advances);
	// StoresBaseline is what a full-suffix campaign at the same replay
	// setting would have executed. Both are exact: predictions are
	// always Masked, whose avoided full run executes every remaining
	// store.
	StoresExecuted int64 `json:"stores_executed"`
	StoresBaseline int64 `json:"stores_baseline"`
	// Sections is the per-section breakdown, in section order.
	Sections []SectionReport `json:"sections"`
	// Library holds the campaign's final summaries (reused + rebuilt),
	// ready to persist for the next incremental run.
	Library *sections.Library `json:"-"`
}

// Speedup returns the estimated store-count ratio of a full-suffix
// campaign over this composed one (≥ 1 when composition helped).
func (r *ComposeReport) Speedup() float64 {
	if r.StoresExecuted <= 0 {
		return 1
	}
	return float64(r.StoresBaseline) / float64(r.StoresExecuted)
}

// withDefaults fills the tunables.
func (o ComposeOptions) withDefaults() ComposeOptions {
	if o.Calibration <= 0 {
		o.Calibration = 0.02
	}
	return o
}

// boundarySink measures the running-max deviation of a truncated run:
// the scalar that summarizes the corrupted state at the section
// boundary. The running max (rather than the last delta) is the honest
// conservative choice because earlier large deltas can sit parked in
// state elements the section never rewrites.
type boundarySink struct{ max float64 }

func (s *boundarySink) Observe(_ int, _, delta float64) {
	if delta > s.max {
		s.max = delta
	}
}

// calibAggregator rides a full calibration run's diff stream and records
// the running-max deviation at every section boundary.
type calibAggregator struct {
	secs     []sections.Section
	cur      int
	runMax   float64
	boundary []float64 // running max at secs[i].End-1, per section
}

func newCalibAggregator(secs []sections.Section) *calibAggregator {
	return &calibAggregator{secs: secs, boundary: make([]float64, len(secs))}
}

func (a *calibAggregator) begin() {
	a.cur, a.runMax = 0, 0
	for i := range a.boundary {
		a.boundary[i] = 0
	}
}

// Observe implements trace.DiffSink.
func (a *calibAggregator) Observe(site int, _, delta float64) {
	if delta > a.runMax {
		a.runMax = delta
	}
	if a.cur < len(a.secs) && site == a.secs[a.cur].End-1 {
		a.boundary[a.cur] = a.runMax
		a.cur++
	}
}

// fold turns one classified calibration run into per-section transfer
// observations: for every section the run traversed after its injection
// section, the boundary error entering it, the boundary error (or
// in-section crash) leaving it, and the run's final outcome.
func (a *calibAggregator) fold(secIdx int, rec Record, crashed bool, crashAt int, into []*sections.Summary) {
	for j := secIdx + 1; j < len(a.secs); j++ {
		if crashed && crashAt < a.secs[j].Start {
			return // never reached section j
		}
		crashedIn := crashed && crashAt < a.secs[j].End
		if into[j] != nil {
			into[j].Observe(a.boundary[j-1], a.boundary[j], crashedIn, rec.Kind, rec.OutErr)
		}
		if crashedIn {
			return
		}
	}
}

// composeWorker is the per-goroutine state of a composed campaign. The
// same worker type serves both phases: calibration items run the full
// diff path through agg, main items run the truncated path through bnd.
type composeWorker struct {
	p       trace.Program
	ctx     trace.Ctx
	worker  int
	canTail bool // p supports cursor-guided resume (fallbacks finish from the pause boundary)
	replay  *replayCache
	rec     *telemetry.CampaignRecorder
	sp      *obs.WorkerSpans // nil-safe when the campaign records no spans
	agg     *calibAggregator
	bnd     boundarySink
	// locals are this worker's private summary builders (calibration
	// phase, merged after the engine drains); sums are the shared
	// read-only merged summaries (main phase).
	locals []*sections.Summary
	sums   []*sections.Summary
	stats  composeStats
}

// composeStats is one worker's counters, merged single-threaded after
// each engine phase completes.
type composeStats struct {
	exactCrash, exactZero, exactLast int
	predicted                        outcome.Counts
	fallbacks, mismatches            int
	reasons                          [sections.NumReasons]int
	fallbackKinds                    outcome.Counts
	executed, baseline               int64
	bySec                            []sectionCounters
}

type sectionCounters struct {
	experiments, calibrated, exact, predicted, fallbacks int
}

func (s *composeStats) mergeInto(rep *ComposeReport) {
	rep.ExactCrash += s.exactCrash
	rep.ExactZero += s.exactZero
	rep.ExactLast += s.exactLast
	rep.Predicted.Merge(s.predicted)
	rep.Fallbacks += s.fallbacks
	for r, n := range s.reasons {
		rep.FallbackReasons[r] += n
	}
	rep.FallbackKinds.Merge(s.fallbackKinds)
	rep.Mismatches += s.mismatches
	rep.StoresExecuted += s.executed
	rep.StoresBaseline += s.baseline
	for i, c := range s.bySec {
		rep.Sections[i].Experiments += c.experiments
		rep.Sections[i].Calibrated += c.calibrated
		rep.Sections[i].Exact += c.exact
		rep.Sections[i].Predicted += c.predicted
		rep.Sections[i].Fallbacks += c.fallbacks
	}
}

// prepare positions the worker for an injection at site, mirroring
// pairWorker's replay accounting.
func (w *composeWorker) prepare(site int) (int, error) {
	if w.replay == nil {
		return 0, nil
	}
	t := w.sp.SubClock()
	pr, err := w.replay.prepare(&w.ctx, site)
	chargeRestore(w.rec, w.sp, w.worker, t, pr)
	if err != nil {
		return 0, err
	}
	return pr.resume, nil
}

// ComposedExhaustive runs the exhaustive campaign in composed mode and
// returns the resulting ground truth with its accounting. The result
// covers the full (site × bit) space like Exhaustive; predicted entries
// carry the composed verdict, everything else is exact. With opts.Truth
// supplied, every entry is compared against it and disagreements are
// counted (the zero-mismatch acceptance gate).
func ComposedExhaustive(cfg Config, opts ComposeOptions) (*GroundTruth, *ComposeReport, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()
	sites := cfg.Golden.Sites()
	secs := opts.Sections
	if err := sections.Validate(secs, sites); err != nil {
		return nil, nil, err
	}
	space := sites * cfg.Bits
	if opts.Truth != nil && (opts.Truth.SitesN != sites || opts.Truth.BitsN != cfg.Bits) {
		return nil, nil, fmt.Errorf("%w: truth is %d sites × %d bits, campaign is %d × %d",
			ErrCheckpointMismatch, opts.Truth.SitesN, opts.Truth.BitsN, sites, cfg.Bits)
	}
	params := sections.Params{MinSamples: opts.MinSamples, Safety: opts.Safety, Slack: opts.Slack}

	// Per-site section index and per-section identity hashes.
	secOf := make([]int, sites)
	for j, s := range secs {
		for i := s.Start; i < s.End; i++ {
			secOf[i] = j
		}
	}
	hashes := sections.Hashes(secs, cfg.Golden.Trace)

	// Resolve each section's summary: reuse a hash-matching prior or
	// schedule a rebuild. Section 0 has no upstream boundary, so no
	// summary of it is ever consulted; it is carried empty for layout.
	name := cfg.Factory().Name()
	rep := &ComposeReport{Experiments: space, Sections: make([]SectionReport, len(secs))}
	sums := make([]*sections.Summary, len(secs))
	rebuild := false
	for j, s := range secs {
		rep.Sections[j] = SectionReport{Section: s, Hash: hashes[j]}
		if prior := opts.Prior.Find(s, hashes[j]); prior != nil && j > 0 {
			sums[j] = prior
			rep.Sections[j].Reused = true
			rep.SummariesReused++
			continue
		}
		sums[j] = sections.NewSummary(s, hashes[j])
		if j > 0 {
			rep.SummariesBuilt++
			rebuild = true
		}
	}

	gt := &GroundTruth{
		SitesN: sites,
		BitsN:  cfg.Bits,
		WidthN: cfg.Width,
		Kinds:  make([]outcome.Kind, space),
	}
	calibrated := make([]bool, space)

	newWorker := func(w int, rec *telemetry.CampaignRecorder, sp *obs.WorkerSpans) *composeWorker {
		cw := &composeWorker{p: cfg.Factory(), worker: w, rec: rec, sp: sp, sums: sums}
		cw.agg = newCalibAggregator(secs)
		cw.stats.bySec = make([]sectionCounters, len(secs))
		if s, ok := cw.p.(trace.Snapshotter); ok {
			cw.canTail = true
			if cfg.Replay {
				cw.replay = newReplayCache(cfg, s)
			}
		}
		return cw
	}

	// Phase 1 — calibration: a seeded uniform sample of full runs whose
	// diff streams populate the summaries being rebuilt. Skipped
	// entirely when every downstream summary was reused (the
	// incremental-re-analysis fast path).
	if rebuild && len(secs) > 1 {
		k := int(math.Ceil(opts.Calibration * float64(space)))
		if k > space {
			k = space
		}
		sample := rng.New(opts.Seed).SampleK(space, k)
		sort.Ints(sample) // site-major order keeps the replay cache warm
		for _, idx := range sample {
			calibrated[idx] = true
		}
		rep.Calibrated = len(sample)

		var mu workerMerge
		_, err = runEngine(cfg, "compose-calibrate", len(sample),
			func(w int, rec *telemetry.CampaignRecorder, sp *obs.WorkerSpans) *composeWorker {
				cw := newWorker(w, rec, sp)
				cw.locals = make([]*sections.Summary, len(secs))
				for j := 1; j < len(secs); j++ {
					if !rep.Sections[j].Reused {
						cw.locals[j] = sections.NewSummary(secs[j], hashes[j])
					}
				}
				mu.add(cw)
				return cw
			},
			func(w *composeWorker, i int) (outcome.Kind, error) {
				idx := sample[i]
				pair := PairAt(idx, cfg.Bits)
				resume, err := w.prepare(pair.Site)
				if err != nil {
					return 0, err
				}
				w.agg.begin()
				res, err := trace.RunInjectDiffFrom(&w.ctx, w.p, cfg.Golden, pair.Site, uint(pair.Bit), w.agg, resume)
				if err != nil {
					return 0, err
				}
				rec := classify(cfg.Golden, cfg.Tol, pair, res)
				sec := secOf[pair.Site]
				w.agg.fold(sec, rec, res.Crashed, res.CrashAt, w.locals)
				end := sites
				if res.Crashed {
					end = res.CrashAt + 1
				}
				w.stats.executed += int64(end - resume)
				w.stats.baseline += int64(end - resume)
				w.stats.bySec[sec].calibrated++
				gt.Kinds[idx] = rec.Kind
				return rec.Kind, nil
			}, nil)
		for _, cw := range mu.workers {
			cw.stats.mergeInto(rep)
			for j := 1; j < len(secs); j++ {
				if cw.locals[j] != nil {
					sums[j].Merge(cw.locals[j])
				}
			}
		}
		if err != nil {
			return nil, nil, err
		}
	}

	// Phase 2 — the composed main pass over the whole space (calibrated
	// entries short-circuit: their exact result is already in).
	var mu workerMerge
	_, err = runEngine(cfg, "compose", space,
		func(w int, rec *telemetry.CampaignRecorder, sp *obs.WorkerSpans) *composeWorker {
			cw := newWorker(w, rec, sp)
			mu.add(cw)
			return cw
		},
		func(w *composeWorker, i int) (outcome.Kind, error) {
			if calibrated[i] {
				return gt.Kinds[i], nil
			}
			pair := PairAt(i, cfg.Bits)
			sec := secOf[pair.Site]
			kind, err := w.runComposed(cfg, pair, sec, secs[sec].End, sites, params)
			if err != nil {
				return 0, err
			}
			w.stats.bySec[sec].experiments++
			if opts.Truth != nil && opts.Truth.At(pair.Site, pair.Bit) != kind {
				w.stats.mismatches++
			}
			gt.Kinds[i] = kind
			return kind, nil
		}, nil)
	for _, cw := range mu.workers {
		cw.stats.mergeInto(rep)
	}
	if err != nil {
		return nil, nil, err
	}

	rep.Library = &sections.Library{Program: name, Summaries: sums}
	return gt, rep, nil
}

// runComposed executes one main-phase experiment: truncate at the
// section boundary, take an exact shortcut when one applies, otherwise
// compose a prediction or fall back to a full run.
func (w *composeWorker) runComposed(cfg Config, pair Pair, sec, until, sites int, params sections.Params) (outcome.Kind, error) {
	resume, err := w.prepare(pair.Site)
	if err != nil {
		return 0, err
	}
	w.bnd.max = 0
	res, paused, err := trace.RunInjectDiffUntil(&w.ctx, w.p, cfg.Golden, pair.Site, uint(pair.Bit), &w.bnd, resume, until)
	if err != nil {
		return 0, err
	}
	switch {
	case !paused && res.Crashed:
		// Crash before the boundary: the truncated run is a byte-exact
		// prefix replay of the full run.
		w.stats.exactCrash++
		w.stats.bySec[sec].exact++
		w.stats.executed += int64(res.CrashAt + 1 - resume)
		w.stats.baseline += int64(res.CrashAt + 1 - resume)
		return outcome.Crash, nil
	case !paused:
		// The section ends at the trace end: the run completed in full.
		w.stats.exactLast++
		w.stats.bySec[sec].exact++
		w.stats.executed += int64(sites - resume)
		w.stats.baseline += int64(sites - resume)
		return classify(cfg.Golden, cfg.Tol, pair, res).Kind, nil
	}
	w.stats.executed += int64(until - resume)
	if w.bnd.max == 0 {
		// The deviation stream is identically zero through the
		// boundary, so the suffix would replay the golden run exactly
		// (a ±0 sign difference is the only possible residue, and it
		// cannot change the output's L∞ deviation): Masked, exact.
		w.stats.exactZero++
		w.stats.bySec[sec].exact++
		w.stats.baseline += int64(sites - resume)
		return outcome.Masked, nil
	}
	pt := w.sp.SubClock()
	pred := sections.Compose(w.sums, sec, w.bnd.max, cfg.Tol, params)
	w.sp.Sub(obs.CatPredict, pt, int64(pred.Why))
	if pred.Composed {
		// Compose only ever predicts Masked, so the avoided full run
		// would have executed every remaining store: the baseline term
		// is exact.
		w.stats.predicted.Add(pred.Kind)
		w.stats.bySec[sec].predicted++
		w.stats.baseline += int64(sites - resume)
		return pred.Kind, nil
	}
	w.stats.fallbacks++
	w.stats.reasons[pred.Why]++
	w.stats.bySec[sec].fallbacks++
	if w.canTail {
		// Fallback, cheap path: the truncated run is a byte-exact prefix
		// of the full experiment and the instance still holds its state
		// at the pause boundary, so finish the run from there instead of
		// re-executing the prefix. A declined prediction then costs
		// exactly what the baseline campaign would have paid. (A
		// progressive variant that re-attempted composition at every
		// later boundary was measured and rejected: the running-max seed
		// never shrinks and the chained bins are coarse, so under 0.2%
		// of declines ever rescued, while each extra pause/resume
		// segment re-paid the cursor skip-walk.)
		tt := w.sp.SubClock()
		full, err := trace.RunResumeTail(&w.ctx, w.p, cfg.Golden, until)
		w.sp.Sub(obs.CatTail, tt, int64(until))
		if err != nil {
			return 0, err
		}
		full.Injected, full.InjErr = res.Injected, res.InjErr
		end := sites
		if full.Crashed {
			end = full.CrashAt + 1
		}
		w.stats.executed += int64(end - until)
		w.stats.baseline += int64(end - resume)
		kind := classify(cfg.Golden, cfg.Tol, pair, full).Kind
		w.stats.fallbackKinds.Add(kind)
		return kind, nil
	}
	// Fallback for programs without cursor-guided resume: run the
	// experiment in full from the same snapshot.
	resume, err = w.prepare(pair.Site)
	if err != nil {
		return 0, err
	}
	ft := w.sp.SubClock()
	full := trace.RunInjectFrom(&w.ctx, w.p, pair.Site, uint(pair.Bit), resume)
	w.sp.Sub(obs.CatFallback, ft, int64(pair.Site))
	if !full.Crashed && w.ctx.Sites() != sites {
		return 0, fmt.Errorf("%w: got %d, golden %d (program %q)",
			trace.ErrTraceMismatch, w.ctx.Sites(), sites, w.p.Name())
	}
	end := sites
	if full.Crashed {
		end = full.CrashAt + 1
	}
	w.stats.executed += int64(end - resume)
	w.stats.baseline += int64(end - resume)
	kind := classify(cfg.Golden, cfg.Tol, pair, full).Kind
	w.stats.fallbackKinds.Add(kind)
	return kind, nil
}

// workerMerge collects the workers an engine run created so their
// private stats and summary builders can be merged after it drains.
// Engine setup callbacks run concurrently, hence the lock.
type workerMerge struct {
	mu      sync.Mutex
	workers []*composeWorker
}

func (m *workerMerge) add(w *composeWorker) {
	m.mu.Lock()
	m.workers = append(m.workers, w)
	m.mu.Unlock()
}
