package campaign

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"ftb/internal/proptrace"
	"ftb/internal/telemetry"
	"ftb/internal/trace"
)

// tracedConfig attaches a shared trajectory buffer to a chain campaign:
// each worker gets its own recorder (tracers are single-owner) but all
// trajectories land in one mutex-protected buffer.
func tracedConfig(n int, workers int, buf *proptrace.Buffer) Config {
	cfg := chainConfig(n, 1e-9, workers)
	cfg.Tracer = func(worker int) Tracer {
		return proptrace.NewRecorder(buf, proptrace.Options{
			Program:       "chain",
			ExpectedSites: cfg.Golden.Sites(),
		})
	}
	return cfg
}

// TestRunPairsTracedMatchesUntraced checks the tentpole invariant: a
// traced campaign classifies identically to an untraced one, and records
// exactly one trajectory per experiment, tagged with its run index.
func TestRunPairsTracedMatchesUntraced(t *testing.T) {
	const n = 12
	pairs := AllPairs(n, 8)
	plain, err := RunPairs(chainConfig(n, 1e-9, 3), pairs)
	if err != nil {
		t.Fatal(err)
	}
	buf := proptrace.NewBuffer()
	traced, err := RunPairs(tracedConfig(n, 3, buf), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) {
		t.Fatalf("record counts: %d vs %d", len(traced), len(plain))
	}
	for i := range plain {
		if traced[i] != plain[i] {
			t.Errorf("record %d differs: traced %+v, plain %+v", i, traced[i], plain[i])
		}
	}
	ts := buf.Trajectories()
	if len(ts) != len(pairs) {
		t.Fatalf("%d trajectories for %d experiments", len(ts), len(pairs))
	}
	for i, tr := range ts {
		// Buffer sorts by run; run ids are the experiment indices.
		if tr.Run != i {
			t.Fatalf("trajectory %d has run %d", i, tr.Run)
		}
		if tr.Site != pairs[i].Site || tr.Bit != pairs[i].Bit {
			t.Errorf("trajectory %d coordinates (%d,%d), want (%d,%d)",
				i, tr.Site, tr.Bit, pairs[i].Site, pairs[i].Bit)
		}
		if tr.Outcome != plain[i].Kind.String() {
			t.Errorf("trajectory %d outcome %q, want %q", i, tr.Outcome, plain[i].Kind)
		}
		if tr.Program != "chain" {
			t.Errorf("trajectory %d program %q", i, tr.Program)
		}
	}
}

// TestExhaustiveTracedMatchesPlain runs the exhaustive campaign traced
// and checks both the ground truth and the trajectory tagging, including
// crash runs (sign-exponent flips on the chain overflow to +Inf).
func TestExhaustiveTracedMatchesPlain(t *testing.T) {
	cfg := chainConfig(10, 1e-9, 4)
	want, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := proptrace.NewBuffer()
	got, err := Exhaustive(tracedConfig(10, 4, buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Kinds {
		if got.Kinds[i] != want.Kinds[i] {
			t.Fatalf("kind[%d]: traced %v, plain %v", i, got.Kinds[i], want.Kinds[i])
		}
	}
	ts := buf.Trajectories()
	if len(ts) != len(want.Kinds) {
		t.Fatalf("%d trajectories for %d experiments", len(ts), len(want.Kinds))
	}
	for i, tr := range ts {
		if tr.Run != i {
			t.Fatalf("trajectory %d has run %d", i, tr.Run)
		}
		pair := PairAt(i, want.BitsN)
		if tr.Site != pair.Site || tr.Bit != pair.Bit {
			t.Fatalf("trajectory %d coordinates (%d,%d), want %+v", i, tr.Site, tr.Bit, pair)
		}
		if tr.Outcome != want.Kinds[i].String() {
			t.Errorf("trajectory %d outcome %q, want %q", i, tr.Outcome, want.Kinds[i])
		}
		if (tr.Outcome == "crash") != (tr.CrashSite >= 0) {
			t.Errorf("trajectory %d: outcome %q with crash site %d", i, tr.Outcome, tr.CrashSite)
		}
	}
}

// TestExhaustiveCheckpointedTracedRunIDs checks that a resumed campaign
// tags trajectories with absolute experiment indices, so traces from the
// two halves of an interrupted campaign line up.
func TestExhaustiveCheckpointedTracedRunIDs(t *testing.T) {
	cfg := tracedConfig(8, 2, proptrace.NewBuffer())
	prior, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const priorSites = 5
	buf := proptrace.NewBuffer()
	cfg = tracedConfig(8, 2, buf)
	if _, err := ExhaustiveCheckpointed(cfg, prior, priorSites, 0, nil); err != nil {
		t.Fatal(err)
	}
	ts := buf.Trajectories()
	wantRuns := (8 - priorSites) * 64
	if len(ts) != wantRuns {
		t.Fatalf("%d trajectories, want %d", len(ts), wantRuns)
	}
	base := priorSites * 64
	for i, tr := range ts {
		if tr.Run != base+i {
			t.Fatalf("trajectory %d has run %d, want %d", i, tr.Run, base+i)
		}
		pair := PairAt(tr.Run, 64)
		if tr.Site != pair.Site || tr.Bit != pair.Bit {
			t.Fatalf("trajectory run %d coordinates (%d,%d), want %+v", tr.Run, tr.Site, tr.Bit, pair)
		}
	}
}

// TestTracedTelemetry checks the trajectory counter: traced experiments
// count, untraced and propagation runs do not.
func TestTracedTelemetry(t *testing.T) {
	col := telemetry.New()
	pairs := AllPairs(6, 4)

	cfg := tracedConfig(6, 2, proptrace.NewBuffer())
	cfg.Collector = col
	if _, err := RunPairs(cfg, pairs); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if snap.Trajectories != int64(len(pairs)) {
		t.Errorf("Trajectories = %d, want %d", snap.Trajectories, len(pairs))
	}
	if ph := snap.Phases["classify"]; ph.Trajectories != int64(len(pairs)) {
		t.Errorf("classify trajectories = %d, want %d", ph.Trajectories, len(pairs))
	}

	// An untraced campaign on the same collector adds experiments but no
	// trajectories.
	cfg2 := chainConfig(6, 1e-9, 2)
	cfg2.Collector = col
	if _, err := RunPairs(cfg2, pairs); err != nil {
		t.Fatal(err)
	}
	// Propagate ignores Tracer entirely.
	cfg3 := tracedConfig(6, 2, proptrace.NewBuffer())
	cfg3.Collector = col
	if _, err := Propagate(cfg3, pairs, func() PropagationSink { return &collectSink{} }); err != nil {
		t.Fatal(err)
	}
	snap = col.Snapshot()
	if snap.Trajectories != int64(len(pairs)) {
		t.Errorf("after untraced runs Trajectories = %d, want %d", snap.Trajectories, len(pairs))
	}
	if snap.Experiments != int64(3*len(pairs)) {
		t.Errorf("Experiments = %d, want %d", snap.Experiments, 3*len(pairs))
	}

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "ftb_trajectories_total 24") {
		t.Errorf("prom exposition missing trajectory counter:\n%s", prom.String())
	}
}

// TestEngineEventLog checks the structured event log: lifecycle records
// at Debug on success, a Warn on a trace mismatch.
func TestEngineEventLog(t *testing.T) {
	var log bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&log, &slog.HandlerOptions{Level: slog.LevelDebug}))

	cfg := chainConfig(4, 1e-9, 2)
	cfg.Logger = logger
	if _, err := RunPairs(cfg, AllPairs(4, 2)); err != nil {
		t.Fatal(err)
	}
	out := log.String()
	for _, want := range []string{"campaign start", "campaign stop", "phase=classify", "traced=false"} {
		if !strings.Contains(out, want) {
			t.Errorf("event log missing %q:\n%s", want, out)
		}
	}

	// A non-data-oblivious factory must produce a Warn-level mismatch
	// event before the campaign aborts.
	log.Reset()
	calls := 0
	cfg.Factory = func() trace.Program {
		calls++
		return &chainProg{n: 3} // shorter trace than the golden run
	}
	if _, err := RunPairs(cfg, AllPairs(3, 2)); err == nil {
		t.Fatal("mismatching factory did not fail")
	}
	out = log.String()
	if !strings.Contains(out, "level=WARN") || !strings.Contains(out, "trace mismatch") {
		t.Errorf("no mismatch warning in event log:\n%s", out)
	}
}

// TestTracedNilWorkerTracer checks that a factory returning nil leaves
// that worker untraced without breaking the campaign.
func TestTracedNilWorkerTracer(t *testing.T) {
	cfg := chainConfig(6, 1e-9, 2)
	cfg.Tracer = func(worker int) Tracer { return nil }
	recs, err := RunPairs(cfg, AllPairs(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 24 {
		t.Fatalf("got %d records", len(recs))
	}
}
