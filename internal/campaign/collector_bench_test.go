package campaign_test

import (
	"sync"
	"testing"
	"time"

	"ftb/internal/campaign"
	"ftb/internal/telemetry"
	"ftb/internal/trace"
)

// benchConfig builds a campaign over a chain program sized so one
// experiment costs on the order of the repo's real kernels at test
// scale (several microseconds), with the default batch size. The
// collector's per-run cost is a fixed number of nanoseconds (one clock
// read plus five worker-striped atomic adds), so measuring it against a
// representative run time is what the 5% budget means; against a
// sub-microsecond toy run the same fixed cost reads as a large ratio.
func benchConfig(n, workers int) campaign.Config {
	g, err := trace.Golden(&chain{n: n})
	if err != nil {
		panic(err)
	}
	return campaign.Config{
		Factory: func() trace.Program { return &chain{n: n} },
		Golden:  g,
		Tol:     1e-9,
		Workers: workers,
	}
}

// collectorPair holds the interleaved off/on measurement, taken once and
// reported by both sub-benchmarks.
var collectorPair struct {
	once        sync.Once
	offNs, onNs float64
	experiments int
}

// measureCollectorPair times the same campaign with and without a
// collector in alternating rounds (flipping the order each round), so
// slow drift in machine load — which on a shared host easily exceeds the
// effect being measured — charges both variants equally instead of
// whichever happened to run second. Sequential A-then-B timing of the
// two variants was observed to swing ±5% between identical runs on the
// same binary; the paired layout is what makes the 5% acceptance budget
// checkable at all.
func measureCollectorPair() {
	const rounds = 12 // plus one warmup round
	cfgOff := benchConfig(2048, 4)
	cfgOn := benchConfig(2048, 4)
	cfgOn.Collector = telemetry.New()
	pairs := campaign.AllPairs(cfgOff.Golden.Sites(), 64)[:2048]
	run := func(cfg campaign.Config) time.Duration {
		start := time.Now()
		if _, err := campaign.RunPairs(cfg, pairs); err != nil {
			panic(err)
		}
		return time.Since(start)
	}
	var offTot, onTot time.Duration
	for r := 0; r <= rounds; r++ {
		var off, on time.Duration
		if r%2 == 0 {
			off = run(cfgOff)
			on = run(cfgOn)
		} else {
			on = run(cfgOn)
			off = run(cfgOff)
		}
		if r == 0 {
			continue // warmup: first round pays cache and allocator fills
		}
		offTot += off
		onTot += on
	}
	collectorPair.offNs = float64(offTot.Nanoseconds()) / rounds
	collectorPair.onNs = float64(onTot.Nanoseconds()) / rounds
	collectorPair.experiments = len(pairs)
}

// BenchmarkEngineCollector reports the collector's hot-path overhead:
// the same campaign with and without a collector attached, measured
// interleaved (see measureCollectorPair). ns/op is per campaign. The
// on/off pair must stay within the 5% acceptance budget.
func BenchmarkEngineCollector(b *testing.B) {
	for _, mode := range []struct {
		name string
		ns   *float64
	}{
		{"off", &collectorPair.offNs},
		{"on", &collectorPair.onNs},
	} {
		b.Run(mode.name, func(b *testing.B) {
			collectorPair.once.Do(measureCollectorPair)
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(*mode.ns, "ns/op")
			b.ReportMetric(float64(collectorPair.experiments), "experiments/op")
		})
	}
}
