package campaign

import (
	"ftb/internal/trace"
)

// replayCache is one worker's checkpointed-replay state: at most one
// kernel snapshot, taken at a site-prefix boundary (a multiple of the
// campaign's ReplayEvery). Exhaustive campaigns enumerate the sample
// space site-major, so a worker typically runs Bits experiments per
// site and ReplayEvery*Bits per boundary — every snapshot it builds is
// reused many times before the boundary moves.
//
// The cache holds the kernel's own single State buffer (Snapshot
// invalidates previously returned States), which is exactly the
// at-most-one-live-snapshot discipline trace.Snapshotter requires.
type replayCache struct {
	snap   trace.Snapshotter
	every  int         // boundary spacing in sites (≥ 1)
	cached int         // prefix length of the held snapshot; -1 when empty
	state  trace.State // the snapshot, valid when cached >= 0
}

// prepare positions the worker's program to inject at site and returns
// the resume offset to pass to trace.RunInjectFrom / RunInjectDiffFrom,
// plus whether the cached snapshot served the prefix (hit) or had to be
// built or extended (miss). A zero boundary means the experiment runs
// from the program entry and the cache is not consulted.
//
// On return the program's live state holds exactly the prefix
// [0, resume) — either restored from the cache or produced by running
// the golden prefix — so the caller can launch the injection run
// immediately.
func (rc *replayCache) prepare(ctx *trace.Ctx, site int) (resume int, hit bool, err error) {
	b := site - site%rc.every
	if b == 0 {
		return 0, false, nil
	}
	switch {
	case rc.cached == b:
		// Hit: the held snapshot is this experiment's prefix.
		rc.snap.Restore(rc.state)
		return b, true, nil
	case rc.cached > 0 && rc.cached < b:
		// The campaign moved to a later boundary: resume from the held
		// snapshot and run only the gap [cached, b) before re-snapshotting.
		rc.snap.Restore(rc.state)
		if err := trace.Advance(ctx, rc.snap, rc.cached, b); err != nil {
			rc.cached = -1
			return 0, false, err
		}
	default:
		// Empty cache, or a boundary behind the held one (dynamic
		// scheduling can hand a worker an earlier batch): run the golden
		// prefix from the entry.
		if err := trace.Advance(ctx, rc.snap, 0, b); err != nil {
			rc.cached = -1
			return 0, false, err
		}
	}
	// Advance paused with the live state at exactly [0, b) committed;
	// the snapshot copy doubles as the restore for the run that follows.
	rc.state = rc.snap.Snapshot()
	rc.cached = b
	return b, false, nil
}
