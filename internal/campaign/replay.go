package campaign

import (
	"ftb/internal/trace"
)

// DefaultReplayPool is the default size of the per-worker pool of golden
// boundary snapshots kept alongside the moving head snapshot (see
// Config.ReplayPool). 64 entries of a paper-size kernel state are on the
// order of a megabyte per worker — small next to the golden-prefix
// re-execution the pool avoids.
const DefaultReplayPool = 64

// restoreTier classifies what a replayCache.prepare call did to position
// the worker's live state, for the restore-attribution telemetry
// ("where did the prefix come from"). Exactly one tier is charged per
// prepared experiment.
type restoreTier uint8

const (
	// tierNone: the experiment runs from the program entry (prefix
	// boundary 0); no snapshot is consulted and nothing is charged.
	tierNone restoreTier = iota
	// tierBoundary is a first-tier hit: the held snapshot sits exactly at
	// the experiment's prefix boundary and was restored as-is.
	tierBoundary
	// tierSite is a second-tier hit: the held snapshot sits exactly at
	// the injection site (per-site snapshots on), so the restore skips
	// even the boundary→site gap.
	tierSite
	// tierPool: the head snapshot was unusable (typically a backward jump
	// under dynamic scheduling) and the rebuild was seeded from the
	// nearest pooled golden boundary snapshot at or below the target.
	tierPool
	// tierMiss: the rebuild ran the golden prefix forward — from the held
	// snapshot when it was behind the target, else from the program
	// entry — because neither snapshot tier nor the pool covered it.
	tierMiss
)

// prep is prepare's accounting: where the run resumes, which restore
// tier served it, and whether the head restore went through the
// kernel's dirty-interval delta path instead of a full state copy.
type prep struct {
	resume int
	tier   restoreTier
	delta  bool
}

// hit reports whether the prefix was served entirely from a held
// snapshot (the coarse hit/miss split the original single-slot cache
// exposed; pool-seeded and golden-prefix rebuilds are both misses).
func (p prep) hit() bool { return p.tier == tierBoundary || p.tier == tierSite }

// replayCache is one worker's checkpointed-replay state, two-tiered:
//
//   - The head snapshot moves with the campaign: at the experiment's
//     prefix boundary (tier 1), or — when per-site snapshots are on and
//     the kernel supports multiple live snapshots — at the injection
//     site itself (tier 2), so the Bits experiments of one site all
//     restore with zero re-executed stores between boundary and site.
//   - A bounded pool of golden boundary snapshots, precomputed on first
//     use by one golden pass, seeds rebuilds whose target is behind or
//     far ahead of the head (dynamic scheduling handing a worker an
//     earlier batch no longer re-runs the golden prefix from the entry)
//     and doubles as the comparison target for reconvergence probes.
//
// Kernels that only implement the single-buffer trace.Snapshotter keep
// the head (Snapshot invalidates prior States, so no pool); kernels
// implementing trace.MultiSnapshotter get both tiers. A kernel that
// additionally implements trace.DeltaSnapshotter restores the head by
// copying back only the store interval the previous run dirtied.
type replayCache struct {
	snap  trace.Snapshotter
	multi trace.MultiSnapshotter // nil: single-buffer kernel, head only
	delta trace.DeltaSnapshotter // nil: full-copy restores

	every    int  // tier-1 boundary spacing in sites (≥ 1)
	siteSnap bool // tier 2: keep the head at the site, not the boundary
	sites    int  // golden trace length (pool layout and converge probes)

	// Head snapshot: prefix length `cached` (-1 when empty) and its
	// state buffer. On the multi path the buffer is owned by the cache
	// (SnapshotInto) and survives pool operations.
	cached int
	state  trace.State

	// Dirty-interval tracking for delta restores: the union of store
	// intervals committed on the live state since it last matched the
	// head. prepare folds the previous run's extent in from the Ctx, so
	// the interval is maintained without help from callers — under the
	// invariant that every run between two prepare calls resumes at or
	// above the offset the first prepare returned (the engine and
	// compose paths all do; a fresh full run is resume 0, which prepare
	// itself returns).
	lastResume         int // resume offset handed out by the last prepare; -1 = unknown
	dirtyFrom, dirtyTo int

	// Pool of golden boundary snapshots at prefixes poolStep, 2·poolStep,
	// …, len(pool)·poolStep (all ≤ sites-1), built lazily by one golden
	// advance pass. poolCap ≤ 0 disables the pool.
	poolCap   int
	poolStep  int
	pool      []trace.State
	poolBuilt bool

	// Reconvergence early-exit policy (conv gates the whole mechanism;
	// the per-coordinate counters adaptively stop arming converge mode
	// for fault coordinates whose runs never reconverge, since an armed
	// run pays a golden-trace compare per store).
	conv      bool
	convFails [64]uint8
}

// convFailLimit and convReprobeEvery tune the adaptive converge policy:
// after convFailLimit consecutive non-exits a fault coordinate stops
// arming converge mode, except at every convReprobeEvery-th site, where
// every coordinate probes again (error behavior drifts along the trace —
// faults that matter early in an iteration often damp out late).
const (
	convFailLimit    = 2
	convReprobeEvery = 32
)

// newReplayCache builds a worker's cache from the normalized campaign
// config. s must be cfg.Factory()'s instance for this worker.
func newReplayCache(cfg Config, s trace.Snapshotter) *replayCache {
	rc := &replayCache{
		snap:       s,
		every:      cfg.ReplayEvery,
		sites:      cfg.Golden.Sites(),
		cached:     -1,
		lastResume: -1,
	}
	if m, ok := s.(trace.MultiSnapshotter); ok {
		rc.multi = m
		if cfg.ReplayPool >= 0 {
			rc.poolCap = cfg.ReplayPool
			if rc.poolCap == 0 {
				rc.poolCap = DefaultReplayPool
			}
		}
		if d, ok := s.(trace.DeltaSnapshotter); ok {
			rc.delta = d
		}
	}
	rc.siteSnap = cfg.ReplaySiteSnap >= 0
	if _, ok := s.(trace.StateComparer); ok {
		rc.conv = cfg.ReplayConverge >= 0 && rc.poolCap > 0
	}
	return rc
}

// drop empties the head after a failed golden advance: both the prefix
// length and the state buffer are released, so a later prepare cannot
// restore from a snapshot whose build never completed.
func (rc *replayCache) drop() {
	rc.cached = -1
	rc.state = nil
	rc.lastResume = -1
	rc.dirtyFrom, rc.dirtyTo = 0, 0
}

// noteDirty folds one live-state store interval into the dirty span.
func (rc *replayCache) noteDirty(from, to int) {
	if to <= from {
		return
	}
	if rc.dirtyTo <= rc.dirtyFrom {
		rc.dirtyFrom, rc.dirtyTo = from, to
		return
	}
	if from < rc.dirtyFrom {
		rc.dirtyFrom = from
	}
	if to > rc.dirtyTo {
		rc.dirtyTo = to
	}
}

// restoreHead rewinds the live state to the head snapshot, through the
// kernel's delta path when it can prove the dirty interval covers every
// divergence. Reports whether the delta path served the restore.
func (rc *replayCache) restoreHead() bool {
	if rc.delta != nil && rc.dirtyTo > rc.dirtyFrom &&
		rc.delta.RestoreDelta(rc.state, rc.dirtyFrom, rc.dirtyTo) {
		rc.dirtyFrom, rc.dirtyTo = 0, 0
		return true
	}
	rc.snap.Restore(rc.state)
	rc.dirtyFrom, rc.dirtyTo = 0, 0
	return false
}

// buildPool runs one golden pass over the trace, snapshotting every
// poolStep-th prefix boundary into its own buffer. The spacing is the
// smallest multiple of `every` that keeps the pool within poolCap
// entries. On return the live state holds the last pooled prefix; the
// caller's rebuild logic picks it (or a pooled ancestor) up from there.
func (rc *replayCache) buildPool(ctx *trace.Ctx) error {
	rc.poolBuilt = true
	if rc.multi == nil || rc.poolCap <= 0 || rc.sites <= 1 {
		return nil
	}
	step := rc.every
	if n := (rc.sites - 1) / step; n > rc.poolCap {
		step *= (n + rc.poolCap - 1) / rc.poolCap
	}
	n := (rc.sites - 1) / step
	if n == 0 {
		return nil
	}
	rc.poolStep = step
	rc.pool = make([]trace.State, n)
	prev := 0
	for i := 0; i < n; i++ {
		b := (i + 1) * step
		if err := trace.Advance(ctx, rc.snap, prev, b); err != nil {
			rc.pool, rc.poolStep = nil, 0
			return err
		}
		rc.pool[i] = rc.multi.SnapshotInto(nil)
		prev = b
	}
	return nil
}

// poolBase returns the deepest pooled prefix at or below target, with
// its pool index, or (0, -1) when the pool has nothing usable.
func (rc *replayCache) poolBase(target int) (int, int) {
	if rc.poolStep == 0 {
		return 0, -1
	}
	i := target / rc.poolStep
	if i > len(rc.pool) {
		i = len(rc.pool)
	}
	if i == 0 {
		return 0, -1
	}
	return i * rc.poolStep, i - 1
}

// poolStateAt returns the pooled golden state whose prefix length is
// exactly k, for reconvergence probes.
func (rc *replayCache) poolStateAt(k int) (trace.State, bool) {
	if rc.poolStep == 0 || k <= 0 || k%rc.poolStep != 0 {
		return nil, false
	}
	i := k/rc.poolStep - 1
	if i >= len(rc.pool) {
		return nil, false
	}
	return rc.pool[i], true
}

// convergeSchedule decides whether the next run at (site, bit) should be
// armed for reconvergence early-exit and returns the first probe
// boundary and spacing. It requires a built pool (the probes compare
// against pooled golden states) and a pooled boundary strictly after the
// injection site, and consults the adaptive per-coordinate policy.
func (rc *replayCache) convergeSchedule(site int, bit uint) (first, step int, ok bool) {
	if !rc.conv || rc.poolStep == 0 || len(rc.pool) == 0 {
		return 0, 0, false
	}
	if int(bit) < len(rc.convFails) && rc.convFails[bit] >= convFailLimit &&
		(site/rc.every)%convReprobeEvery != 0 {
		return 0, 0, false
	}
	first = (site/rc.poolStep + 1) * rc.poolStep
	if first > len(rc.pool)*rc.poolStep {
		return 0, 0, false
	}
	return first, rc.poolStep, true
}

// convergeResult feeds one armed run's outcome back into the adaptive
// policy. Crashed runs are neutral evidence (they never got the chance
// to reconverge); probe-free completions are too (the run was dirty at
// every boundary, so arming cost only the per-store compare).
func (rc *replayCache) convergeResult(bit uint, convergedAt, probes int, crashed bool) {
	if int(bit) >= len(rc.convFails) {
		return
	}
	switch {
	case convergedAt >= 0:
		rc.convFails[bit] = 0
	case crashed:
	case rc.convFails[bit] < convFailLimit:
		rc.convFails[bit]++
	}
}

// prepare positions the worker's program to inject at site and returns
// the resume offset to pass to trace.RunInjectFrom and friends, plus the
// restore-tier accounting. On return the live state holds exactly the
// prefix [0, resume) — restored, delta-restored, or produced by running
// the golden prefix — so the caller can launch the injection run
// immediately. A zero target means the experiment runs from the program
// entry and no snapshot is consulted.
func (rc *replayCache) prepare(ctx *trace.Ctx, site int) (prep, error) {
	// Fold the previous run's store extent into the live-vs-head dirty
	// interval: a run armed at lastResume committed at most the stores
	// [lastResume, ctx.Sites()).
	if rc.cached >= 0 && rc.lastResume >= 0 {
		rc.noteDirty(rc.lastResume, ctx.Sites())
	}
	if !rc.poolBuilt {
		if err := rc.buildPool(ctx); err != nil {
			rc.drop()
			return prep{}, err
		}
	}
	target := site
	if !rc.siteSnap {
		target = site - site%rc.every
	}
	if target == 0 {
		rc.lastResume = 0
		return prep{}, nil
	}
	if rc.cached == target {
		// Hit: the held snapshot is exactly this experiment's prefix.
		tier := tierBoundary
		if rc.siteSnap {
			tier = tierSite
		}
		usedDelta := rc.restoreHead()
		rc.lastResume = target
		return prep{resume: target, tier: tier, delta: usedDelta}, nil
	}
	// Rebuild: seed from the deepest usable prefix at or below the
	// target — the held head when it is behind the target, a pooled
	// golden boundary when that gets closer (or when the target is
	// behind the head: dynamic scheduling handing this worker an
	// earlier batch), else the program entry.
	base := 0
	fromHead := rc.cached > 0 && rc.cached < target
	if fromHead {
		base = rc.cached
	}
	tier := tierMiss
	if pb, pi := rc.poolBase(target); pb > base {
		rc.snap.Restore(rc.pool[pi])
		base, fromHead = pb, false
		tier = tierPool
	} else if fromHead {
		rc.restoreHead()
	}
	if base < target {
		if err := trace.Advance(ctx, rc.snap, base, target); err != nil {
			rc.drop()
			return prep{}, err
		}
	}
	// The live state now holds exactly [0, target); the snapshot copy
	// doubles as the restore for the run that follows.
	if rc.multi != nil {
		rc.state = rc.multi.SnapshotInto(rc.state)
	} else {
		rc.state = rc.snap.Snapshot()
	}
	rc.cached = target
	rc.dirtyFrom, rc.dirtyTo = 0, 0
	rc.lastResume = target
	return prep{resume: target, tier: tier}, nil
}
