package campaign

import (
	"fmt"
	"testing"

	"ftb/internal/kernels"
	"ftb/internal/trace"
)

// benchCrashHeavyPairs builds the workload dynamic scheduling exists for:
// flipping the top exponent bit (62) makes most runs blow up and crash
// shortly after the injection site, so an experiment's cost is roughly
// proportional to its site index. In ascending site order, static
// chunking hands the first worker the cheapest contiguous block and the
// last worker the most expensive one; the dynamic queue rebalances.
func benchCrashHeavyPairs(sites int) []Pair {
	pairs := make([]Pair, 0, sites)
	for s := 0; s < sites; s++ {
		pairs = append(pairs, Pair{Site: s, Bit: 62})
	}
	return pairs
}

func benchConfig(b *testing.B, sched Sched, workers int) Config {
	b.Helper()
	k, err := kernels.New("cg", kernels.SizeSmall)
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.Golden(k)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Factory: func() trace.Program {
			kk, err := kernels.New("cg", kernels.SizeSmall)
			if err != nil {
				panic(err)
			}
			return kk
		},
		Golden:  g,
		Tol:     k.Tolerance(),
		Workers: workers,
		Sched:   sched,
		Batch:   8,
	}
}

// BenchmarkScheduling contrasts static chunking with the dynamic queue on
// the crash-heavy CG workload (see results_extra.txt for recorded runs).
// On a single-core host both modes execute the same total work, so ns/op
// mainly shows that the dynamic queue costs nothing; the load-balance
// advantage itself is what BenchmarkSchedulingImbalance measures.
func BenchmarkScheduling(b *testing.B) {
	for _, workers := range []int{4, 8} {
		for _, sched := range []Sched{SchedStatic, SchedDynamic} {
			b.Run(fmt.Sprintf("%v/workers=%d", sched, workers), func(b *testing.B) {
				cfg := benchConfig(b, sched, workers)
				pairs := benchCrashHeavyPairs(cfg.Golden.Sites())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := RunPairs(cfg, pairs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// costSink records the cost of each experiment (stores executed, observed
// via the per-store diff callback), keyed by injection site. The
// crash-heavy workload uses one pair per site, so the site is the index.
type costSink struct {
	costs []int
	cur   int
}

func (s *costSink) BeginRun(Pair)                 { s.cur = 0 }
func (s *costSink) Observe(int, float64, float64) { s.cur++ }
func (s *costSink) EndRun(rec Record)             { s.costs[rec.Site] = s.cur }

// BenchmarkSchedulingMakespan measures every experiment's true cost, then
// replays both scheduling disciplines over those costs with each worker
// advancing at its own pace — exactly the engine's behaviour when workers
// run on real parallel cores. It reports the resulting makespans (in
// store-executions) and "speedup": static makespan over dynamic makespan,
// i.e. the wall-clock factor the dynamic queue wins on a multi-core host.
// (On this package's single-core CI box BenchmarkScheduling's ns/op can't
// show the gap — total work per core is identical — which is why the
// makespan is simulated from measured costs instead.)
func BenchmarkSchedulingMakespan(b *testing.B) {
	const workers = 4
	cfg := benchConfig(b, SchedDynamic, 1)
	pairs := benchCrashHeavyPairs(cfg.Golden.Sites())
	costs := make([]int, cfg.Golden.Sites())
	var static, dynamic float64
	for i := 0; i < b.N; i++ {
		sinks, err := Propagate(cfg, pairs, func() PropagationSink { return &costSink{costs: costs} })
		if err != nil {
			b.Fatal(err)
		}
		if len(sinks) != 1 {
			b.Fatalf("expected 1 worker, got %d sinks", len(sinks))
		}
		static = simulateStatic(costs, workers)
		dynamic = simulateDynamic(costs, workers, DefaultBatch)
	}
	b.ReportMetric(static, "static-makespan")
	b.ReportMetric(dynamic, "dynamic-makespan")
	b.ReportMetric(static/dynamic, "speedup")
}

// simulateStatic returns the makespan of contiguous per-worker chunks:
// every worker's chunk cost is fixed up front, so the slowest chunk is
// the campaign's finish time.
func simulateStatic(costs []int, workers int) float64 {
	n := len(costs)
	chunk := (n + workers - 1) / workers
	max := 0
	for w := 0; w < workers; w++ {
		sum := 0
		for i := w * chunk; i < min((w+1)*chunk, n); i++ {
			sum += costs[i]
		}
		if sum > max {
			max = sum
		}
	}
	return float64(max)
}

// simulateDynamic returns the makespan of batch claims off a shared
// queue: the least-loaded worker always claims the next batch, which is
// what happens in real time when workers claim as they finish.
func simulateDynamic(costs []int, workers, batch int) float64 {
	clocks := make([]int, workers)
	for lo := 0; lo < len(costs); lo += batch {
		w := 0
		for i := 1; i < workers; i++ {
			if clocks[i] < clocks[w] {
				w = i
			}
		}
		for i := lo; i < min(lo+batch, len(costs)); i++ {
			clocks[w] += costs[i]
		}
	}
	max := 0
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	return float64(max)
}
