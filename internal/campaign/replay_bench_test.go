package campaign

import (
	"testing"

	"ftb/internal/kernels"
	"ftb/internal/trace"
)

// BenchmarkReplayExhaustive measures what the two-tier replay cache
// buys on a full exhaustive campaign (every bit at every site), on a
// small and a mid-size kernel. On the mid-size kernel (gmres/paper,
// ~32k sites) recorded runs measure 1.85x-2.04x over vanilla —
// re-executed prefixes are about half the total store count, so
// skipping them approaches a 2× win as the trace grows, and per-site
// snapshots, pooled boundaries, and the reconvergence early exit claw
// back most of the remaining per-experiment overhead; the recorded pair
// in BENCH_replay.json is the acceptance artifact, and `make
// bench-replay` gates the within-run ratio via benchjson -speedup
// (floor REPLAY_SPEEDUP_MIN, set below the measured band). Workers
// is pinned to 1 so the pair measures the algorithmic saving, not
// scheduler interleaving. Classification output is byte-identical
// either way (pinned by TestReplayMatrixByteIdentical and
// TestReplayFeatureTogglesByteIdentical).
func BenchmarkReplayExhaustive(b *testing.B) {
	for _, tc := range []struct{ kernel, size string }{
		{"cg", kernels.SizeTest},     // small: 418 sites
		{"gmres", kernels.SizePaper}, // mid-size: 32104 sites
	} {
		k, err := kernels.New(tc.kernel, tc.size)
		if err != nil {
			b.Fatal(err)
		}
		g, err := trace.Golden(k)
		if err != nil {
			b.Fatal(err)
		}
		cfg := Config{
			Factory: func() trace.Program {
				kk, err := kernels.New(tc.kernel, tc.size)
				if err != nil {
					panic(err)
				}
				return kk
			},
			Golden:  g,
			Tol:     k.Tolerance(),
			Workers: 1,
		}
		for _, mode := range []struct {
			name   string
			replay bool
		}{{"vanilla", false}, {"replay", true}} {
			b.Run(tc.kernel+"-"+tc.size+"/"+mode.name, func(b *testing.B) {
				c := cfg
				c.Replay = mode.replay
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Exhaustive(c); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(g.Sites()), "sites")
			})
		}
	}
}
