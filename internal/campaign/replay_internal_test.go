// Internal regression tests for the two-tier replay cache: pool-seeded
// restores for targets behind the head (the dynamic-scheduling backward
// jump), and the error paths that must drop the held snapshot rather
// than leave a half-built prefix behind.
package campaign

import (
	"testing"

	"ftb/internal/trace"
)

// poolProg is a minimal MultiSnapshotter chain program for driving a
// replayCache directly. n is mutable so a test can make the program run
// short and force trace.Advance to fail mid-prepare.
type poolProg struct {
	n int
	v []float64
}

func newPoolProg(n int) *poolProg { return &poolProg{n: n, v: make([]float64, n)} }

func (p *poolProg) Name() string { return "poolprog" }

func (p *poolProg) Run(ctx *trace.Ctx) []float64 {
	for i := ctx.ResumePos(); i < p.n; i++ {
		prev := 1.0
		if i > 0 {
			prev = p.v[i-1]
		}
		p.v[i] = ctx.Store(prev*1.0003 + float64(i%5))
	}
	return []float64{p.v[len(p.v)-1]}
}

func (p *poolProg) Snapshot() trace.State { return p.SnapshotInto(nil) }

func (p *poolProg) Restore(s trace.State) { copy(p.v, s.([]float64)) }

func (p *poolProg) SnapshotInto(dst trace.State) trace.State {
	buf, _ := dst.([]float64)
	if len(buf) != len(p.v) {
		buf = make([]float64, len(p.v))
	}
	copy(buf, p.v)
	return buf
}

// poolCacheConfig builds the minimal normalized config a replayCache
// needs: golden trace, dense boundaries, and a small pool so the
// pool-step arithmetic (39 prefixes / cap 8 → step 5) is exercised.
func poolCacheConfig(t *testing.T, n int) Config {
	t.Helper()
	golden, err := trace.Golden(newPoolProg(n))
	if err != nil {
		t.Fatal(err)
	}
	return Config{Golden: golden, ReplayEvery: 1, ReplayPool: 8}
}

// TestReplayCachePoolServesBackwardTarget pins the pool tier: after the
// head has moved deep into the trace, a prepare for an earlier site —
// what a dynamic scheduler handing this worker an older batch looks
// like — must restore from a pooled golden boundary, not re-run the
// golden prefix from the entry, and the experiment launched from that
// restore must classify byte-identically to a from-scratch run.
func TestReplayCachePoolServesBackwardTarget(t *testing.T) {
	const n = 40
	cfg := poolCacheConfig(t, n)
	p := newPoolProg(n)
	rc := newReplayCache(cfg, p)
	var ctx trace.Ctx

	pr, err := rc.prepare(&ctx, 30)
	if err != nil {
		t.Fatal(err)
	}
	if pr.resume != 30 {
		t.Fatalf("first prepare resume = %d, want 30", pr.resume)
	}
	trace.RunInjectFrom(&ctx, p, 30, 3, pr.resume)

	// Backward jump: head holds prefix 30, target is 12. The pool entry
	// at 10 (step 5) is the nearest usable base.
	pr, err = rc.prepare(&ctx, 12)
	if err != nil {
		t.Fatal(err)
	}
	if pr.tier != tierPool {
		t.Fatalf("backward prepare tier = %d, want tierPool", pr.tier)
	}
	if pr.resume != 12 {
		t.Fatalf("backward prepare resume = %d, want 12", pr.resume)
	}
	got := trace.RunInjectFrom(&ctx, p, 12, 3, pr.resume)

	var vctx trace.Ctx
	want := trace.RunInject(&vctx, newPoolProg(n), 12, 3)
	if got.Crashed != want.Crashed || len(got.Output) != len(want.Output) {
		t.Fatalf("pool-restored run = %+v, want %+v", got, want)
	}
	for i := range want.Output {
		if got.Output[i] != want.Output[i] {
			t.Fatalf("output[%d] = %g, want %g", i, got.Output[i], want.Output[i])
		}
	}

	// The rebuilt head is now a second-tier hit for the site's next bit.
	pr, err = rc.prepare(&ctx, 12)
	if err != nil {
		t.Fatal(err)
	}
	if pr.tier != tierSite || !pr.hit() {
		t.Fatalf("repeat prepare tier = %d, want tierSite hit", pr.tier)
	}
}

// TestReplayCacheDropsStateOnAdvanceError pins the error-path contract:
// a prepare whose golden advance fails must release both the cached
// prefix length AND the state buffer — a later prepare must rebuild
// rather than restore a snapshot whose build never completed — and the
// cache must recover once the program behaves again.
func TestReplayCacheDropsStateOnAdvanceError(t *testing.T) {
	const n = 40
	cfg := poolCacheConfig(t, n)
	p := newPoolProg(n)
	rc := newReplayCache(cfg, p)
	var ctx trace.Ctx

	if _, err := rc.prepare(&ctx, 7); err != nil {
		t.Fatal(err)
	}
	if rc.cached != 7 || rc.state == nil {
		t.Fatalf("head after prepare = (%d, %v)", rc.cached, rc.state != nil)
	}

	// Shrink the program so the advance from the pooled base at 10 to
	// the target 12 returns before pausing.
	p.n = 10
	if _, err := rc.prepare(&ctx, 12); err == nil {
		t.Fatal("prepare with a short-running program succeeded")
	}
	if rc.cached != -1 || rc.state != nil || rc.lastResume != -1 {
		t.Fatalf("head not dropped after failed advance: cached=%d state=%v lastResume=%d",
			rc.cached, rc.state != nil, rc.lastResume)
	}

	p.n = n
	pr, err := rc.prepare(&ctx, 12)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.RunInjectFrom(&ctx, p, 12, 5, pr.resume)
	var vctx trace.Ctx
	want := trace.RunInject(&vctx, newPoolProg(n), 12, 5)
	for i := range want.Output {
		if got.Output[i] != want.Output[i] {
			t.Fatalf("post-recovery output[%d] = %g, want %g", i, got.Output[i], want.Output[i])
		}
	}
}

// TestReplayCacheDropsStateOnPoolBuildError covers the other error
// path: a failed lazy pool build must also leave the cache empty, and
// the error must surface to the caller.
func TestReplayCacheDropsStateOnPoolBuildError(t *testing.T) {
	const n = 40
	cfg := poolCacheConfig(t, n)
	p := newPoolProg(n)
	p.n = 3 // too short for even the first pooled boundary at 5
	rc := newReplayCache(cfg, p)
	var ctx trace.Ctx

	if _, err := rc.prepare(&ctx, 2); err == nil {
		t.Fatal("prepare with a failing pool build succeeded")
	}
	if rc.cached != -1 || rc.state != nil || len(rc.pool) != 0 {
		t.Fatalf("cache not empty after failed pool build: cached=%d state=%v pool=%d",
			rc.cached, rc.state != nil, len(rc.pool))
	}
}
