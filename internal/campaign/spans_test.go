// Engine↔span integration tests, external-package like the collector
// suite so they exercise the exact surface the facade wires (Config.Spans
// plus the campaign entry points). The Makefile race target runs this
// package, making these the race-gated "8 workers recording sampled
// experiment spans" proof at engine level.
package campaign_test

import (
	"bytes"
	"testing"

	"ftb/internal/campaign"
	"ftb/internal/kernels"
	"ftb/internal/obs"
	"ftb/internal/outcome"
	"ftb/internal/trace"
)

// kernelConfig builds a replay-enabled config for a kernel at test size.
func kernelConfig(t *testing.T, name string, workers int) campaign.Config {
	t.Helper()
	k, err := kernels.New(name, kernels.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := trace.Golden(k)
	if err != nil {
		t.Fatal(err)
	}
	return campaign.Config{
		Factory: func() trace.Program {
			kk, err := kernels.New(name, kernels.SizeTest)
			if err != nil {
				panic(err)
			}
			return kk
		},
		Golden:  golden,
		Tol:     k.Tolerance(),
		Width:   k.Width(),
		Workers: workers,
		Replay:  true,
	}
}

// TestExhaustiveSpans runs the deterministic stencil test campaign on 8
// workers with spans on and checks the recorded tree: results identical
// to a spans-off run, a single phase span, per-worker wait/batch tiling,
// sampled experiment spans with restore sub-spans, and an attribution
// that explains the phase's worker-time.
func TestExhaustiveSpans(t *testing.T) {
	want, err := campaign.Exhaustive(kernelConfig(t, "stencil", 8))
	if err != nil {
		t.Fatal(err)
	}

	cfg := kernelConfig(t, "stencil", 8)
	rec := obs.NewRecorder()
	cfg.Spans = rec
	cfg.SpanSample = 4
	got, err := campaign.Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outcomeBytes(got.Kinds), outcomeBytes(want.Kinds)) {
		t.Fatal("spans-on ground truth differs from spans-off")
	}
	if d := rec.Dropped(); d != 0 {
		t.Fatalf("dropped %d spans", d)
	}

	spans := rec.Cut()
	var phase obs.Span
	counts := make(map[obs.Category]int)
	for _, sp := range spans {
		counts[sp.Cat]++
		if sp.Cat == obs.CatPhase {
			phase = sp
		}
	}
	if counts[obs.CatPhase] != 1 || phase.Name != "exhaustive" {
		t.Fatalf("phase spans: %d (%q), want one %q", counts[obs.CatPhase], phase.Name, "exhaustive")
	}
	n := len(want.Kinds)
	if phase.Meta != int64(n) {
		t.Errorf("phase meta = %d, want %d experiments", phase.Meta, n)
	}
	if counts[obs.CatBatch] == 0 || counts[obs.CatWait] == 0 {
		t.Fatalf("missing batch/wait spans: %v", counts)
	}
	// Each worker samples experiments 1, 1+sample, ... so across workers
	// the total is at least n/sample spans and at most one extra per
	// worker; every sampled experiment restores from a snapshot.
	if counts[obs.CatExperiment] < n/cfg.SpanSample || counts[obs.CatExperiment] > n/cfg.SpanSample+8 {
		t.Errorf("experiment spans = %d for n=%d sample=%d", counts[obs.CatExperiment], n, cfg.SpanSample)
	}
	// Every sampled experiment records exactly one restore-tier sub-span
	// (boundary hit, per-site hit, pool-seeded rebuild, or golden-prefix
	// build); most are second-tier hits under the default config.
	restores := counts[obs.CatRestore] + counts[obs.CatRestoreSite] +
		counts[obs.CatRestorePool] + counts[obs.CatRestoreBuild]
	if restores != counts[obs.CatExperiment] {
		t.Errorf("restore spans = %d, want one per sampled experiment (%d)",
			restores, counts[obs.CatExperiment])
	}
	if counts[obs.CatRestoreSite] == 0 {
		t.Error("no second-tier (per-site) restore spans recorded")
	}

	// Wait/batch spans must tile each worker's lifetime: chained spans,
	// alternating categories, no gaps. That structural guarantee is what
	// makes the profile table's coverage claim hold.
	perWorker := make(map[int][]obs.Span)
	for _, sp := range spans {
		if sp.Parent == phase.ID && (sp.Cat == obs.CatWait || sp.Cat == obs.CatBatch) {
			perWorker[sp.Worker] = append(perWorker[sp.Worker], sp)
		}
	}
	for w, tile := range perWorker {
		for i := 1; i < len(tile); i++ {
			if tile[i].Start != tile[i-1].End() {
				t.Fatalf("worker %d: span gap at %d", w, i)
			}
		}
	}

	a := obs.Attribute(spans)
	if len(a.Phases) != 1 {
		t.Fatalf("attribution phases = %d", len(a.Phases))
	}
	p := a.Phases[0]
	if p.Workers != len(perWorker) {
		t.Errorf("attribution workers = %d, want %d", p.Workers, len(perWorker))
	}
	// Tiling means coverage is structurally ~100%; allow slack for
	// worker start/stop skew against the phase span.
	if p.CoveragePct < 80 {
		t.Errorf("phase coverage = %.1f%%, want ≥ 80%%", p.CoveragePct)
	}
	var restore bool
	for _, c := range p.Categories {
		switch c.Cat {
		case obs.CatRestore, obs.CatRestoreSite, obs.CatRestorePool, obs.CatRestoreBuild:
			if c.NS > 0 {
				restore = true
			}
		}
	}
	if !restore {
		t.Error("attribution has no restore line")
	}
}

// TestComposeSpans checks that a composed campaign emits the compose-
// specific sub-span categories (predict plus tail or fallback) under
// both of its phases.
func TestComposeSpans(t *testing.T) {
	cfg, secs := composeConfig(t, "stencil")
	rec := obs.NewRecorder()
	cfg.Spans = rec
	cfg.SpanSample = 1 // sample everything: fallback paths are sparse
	if _, _, err := campaign.ComposedExhaustive(cfg, campaign.ComposeOptions{Sections: secs}); err != nil {
		t.Fatal(err)
	}
	spans := rec.Cut()
	phases := make(map[string]bool)
	counts := make(map[obs.Category]int)
	for _, sp := range spans {
		counts[sp.Cat]++
		if sp.Cat == obs.CatPhase {
			phases[sp.Name] = true
		}
	}
	if !phases["compose"] || !phases["compose-calibrate"] {
		t.Fatalf("phases = %v, want compose and compose-calibrate", phases)
	}
	if counts[obs.CatPredict] == 0 {
		t.Error("no predict spans recorded")
	}
	if counts[obs.CatTail]+counts[obs.CatFallback] == 0 {
		t.Error("no tail/fallback spans recorded")
	}
	if counts[obs.CatRestore] == 0 {
		t.Error("no restore spans recorded")
	}
}

func outcomeBytes(ks []outcome.Kind) []byte {
	b := make([]byte, len(ks))
	for i, k := range ks {
		b[i] = byte(k)
	}
	return b
}
