package proptrace

import "testing"

// BenchmarkObserve measures the recorder's marginal per-site cost: the
// body of Observe on a steady-state (post-doubling) stream. This is the
// price one diff-mode dynamic instruction pays for trajectory recording
// on top of the diff itself.
func BenchmarkObserve(b *testing.B) {
	r := NewRecorder(Discard{}, Options{})
	r.BeginRun(0, 0, 0, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(i, 1.5, 0.25)
	}
}
