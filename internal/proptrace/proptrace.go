// Package proptrace records per-injection error trajectories: the
// paper's core object of study — how one injected error evolves through
// the dynamic instruction stream — captured as a bounded, exportable
// artifact instead of being folded away into aggregate counters.
//
// A Recorder rides the per-site |golden − corrupted| stream a diff-mode
// injection run emits (trace.RunInjectDiff and the engine's traced
// campaign runs) and condenses it into one Trajectory per injection:
// the injection coordinates, run/worker tags, outcome, a downsampled
// sequence of propagation-error samples, and the landmarks that matter
// for explaining the outcome — the largest deviation, the first site
// where the error fully masked (delta returned to zero), and the first
// site where it blew past the golden magnitude. Trajectories serialize
// as JSONL (jsonl.go) and as Chrome trace-event files loadable in
// Perfetto / chrome://tracing (chrome.go), and fold into a
// per-dynamic-instruction error-decay heatmap (decay.go).
//
// Downsampling is stride-doubling: samples are kept at a power-of-two
// site stride that doubles whenever the buffer would exceed MaxSamples.
// Unlike random reservoir sampling it is deterministic (the same run
// always yields the same trajectory), order-preserving, and keeps the
// retained sites evenly spaced — the natural x-axis for a decay plot.
// The landmark samples are tracked separately and exactly, so
// downsampling can never lose the extremum or the crossings.
package proptrace

import (
	"cmp"
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync"
)

// Float is a float64 that survives JSON round-trips even when
// non-finite: ±Inf and NaN — legal and meaningful propagation values
// (a crash's output error is +Inf) — marshal as quoted strings, which
// encoding/json would otherwise reject outright.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("proptrace: bad float %s: %w", data, err)
	}
	*f = Float(v)
	return nil
}

// Sample is one retained propagation observation: the absolute
// |golden − corrupted| deviation at one dynamic instruction, with the
// golden value for relative-error scaling.
type Sample struct {
	Site   int   `json:"site"`
	Delta  Float `json:"delta"`
	Golden Float `json:"golden"`
}

// Trajectory is one injection's condensed error trajectory.
type Trajectory struct {
	// Program names the traced program (may be empty).
	Program string `json:"program,omitempty"`
	// Run is the experiment's index within its campaign (the engine's
	// item index); -1 for standalone single runs.
	Run int `json:"run"`
	// Worker is the engine worker that executed the run; -1 standalone.
	Worker int `json:"worker"`
	// Site and Bit are the injection coordinates.
	Site int   `json:"site"`
	Bit  uint8 `json:"bit"`
	// Outcome is the classified result ("masked", "sdc", "crash").
	Outcome string `json:"outcome"`
	// InjErr is |flipped − original| at the injection site.
	InjErr Float `json:"inj_err"`
	// OutErr is the L∞ output deviation (+Inf for crashes).
	OutErr Float `json:"out_err"`
	// CrashSite is the site of the unsafe store for crashes, else -1.
	CrashSite int `json:"crash_site"`
	// Sites is the number of dynamic instructions the run observed
	// diffs for (the trajectory's x-extent, not the sample count).
	Sites int `json:"sites"`
	// Stride is the final downsampling stride: retained samples sit
	// Stride dynamic instructions apart (1 = every post-injection site).
	Stride int `json:"stride"`
	// Samples is the downsampled trajectory, in execution order,
	// starting at the injection site.
	Samples []Sample `json:"samples"`
	// Max is the largest deviation observed anywhere in the run,
	// captured exactly regardless of downsampling.
	Max Sample `json:"max"`
	// FirstZero is the first site strictly after the injection where
	// the deviation returned to exactly zero (the error fully masked in
	// that value), or -1 if it never did.
	FirstZero int `json:"first_zero"`
	// FirstBlowup is the first site where the deviation exceeded the
	// recorder's blow-up threshold relative to the golden magnitude, or
	// -1 if it never did.
	FirstBlowup int `json:"first_blowup"`
}

// Sink consumes completed trajectories. Implementations must be safe
// for concurrent use: campaign workers deliver trajectories as their
// runs finish.
//
// t.Samples is a zero-copy view into the recorder's reusable buffer,
// valid only until Consume returns; a sink that retains the trajectory
// beyond the call must copy the slice (see Buffer). Streaming sinks
// (JSONLWriter) serialize in place and never pay the copy — which is
// what keeps recording overhead per run flat.
type Sink interface {
	Consume(t Trajectory)
}

// Options configures a Recorder.
type Options struct {
	// MaxSamples bounds the retained samples per trajectory (default
	// DefaultMaxSamples). The stride doubles whenever the buffer would
	// grow past it, so memory per trajectory is O(MaxSamples) no matter
	// how long the program runs.
	MaxSamples int
	// BlowupRel is the relative-error threshold of the first-blowup
	// landmark: the first site where delta > BlowupRel·|golden| (or
	// delta > BlowupRel where golden is subnormal-or-zero) is recorded.
	// Default DefaultBlowupRel — the deviation overtaking the value
	// itself.
	BlowupRel float64
	// Program tags every trajectory with a program name.
	Program string
	// ExpectedSites hints the per-run dynamic-instruction count
	// (campaigns pass the golden run's site count). When set, BeginRun
	// picks the smallest power-of-two stride whose retained samples fit
	// MaxSamples up front, so long runs never pay mid-run re-striding;
	// runs shorter than the hint just retain fewer samples. Zero means
	// start at stride 1 and double on demand.
	ExpectedSites int
}

// Recorder defaults. 128 retained samples over-resolve both renderers
// (the decay heatmap defaults to 96 columns and Perfetto counter tracks
// are legible well below that) while keeping the per-run buffer a small
// cache footprint next to a working kernel — the buffer's cache-line
// churn, not the landmark arithmetic, is what shows up as recording
// overhead on cache-tight kernels.
const (
	DefaultMaxSamples = 128
	DefaultBlowupRel  = 1.0
)

func (o Options) normalized() Options {
	if o.MaxSamples <= 0 {
		o.MaxSamples = DefaultMaxSamples
	}
	if o.BlowupRel <= 0 {
		o.BlowupRel = DefaultBlowupRel
	}
	return o
}

// Recorder condenses one run's diff stream at a time into a Trajectory
// and hands it to a Sink. It implements campaign.Tracer (and therefore
// trace.DiffSink); a Recorder serves one goroutine — campaigns build one
// per worker via Factory.
type Recorder struct {
	// Hot-path state leads the struct so Observe's working set spans as
	// few cache lines as possible; EndRun folds it back into cur. The
	// fields mirror the trajectory's landmark state as plain scalars.
	// strideMask is stride−1 (the stride is always a power of two),
	// turning the on-stride test into a mask instead of a modulo.
	armed       bool
	injSite     int
	sites       int
	strideMask  int
	maxSite     int
	maxDelta    float64
	maxGolden   float64
	firstZero   int
	firstBlowup int
	blowupRel   float64
	maxSamples  int
	samples     []Sample

	opts Options
	sink Sink
	cur  Trajectory
}

// NewRecorder builds a recorder delivering trajectories to sink.
func NewRecorder(sink Sink, opts Options) *Recorder {
	o := opts.normalized()
	return &Recorder{
		opts:       o,
		sink:       sink,
		maxSamples: o.MaxSamples,
		samples:    make([]Sample, 0, o.MaxSamples),
	}
}

// BeginRun implements campaign.Tracer: arm the recorder for one
// injection run. Standalone callers may pass run = worker = -1.
func (r *Recorder) BeginRun(run, worker int, site int, bit uint8) {
	r.cur = Trajectory{
		Program:   r.opts.Program,
		Run:       run,
		Worker:    worker,
		Site:      site,
		Bit:       bit,
		CrashSite: -1,
	}
	r.samples = r.samples[:0]
	r.injSite = site
	r.sites = 0
	r.strideMask = 0
	if post := r.opts.ExpectedSites - site; post > r.maxSamples {
		stride := 1
		for (post+stride-1)/stride > r.maxSamples {
			stride <<= 1
		}
		r.strideMask = stride - 1
	}
	r.maxSite = -1
	r.maxDelta = -1
	r.maxGolden = 0
	r.firstZero = -1
	r.firstBlowup = -1
	r.blowupRel = r.opts.BlowupRel
	r.armed = true
}

// Observe implements trace.DiffSink. Sites arrive in execution order;
// sites before the injection carry structurally zero deltas and are
// counted but not sampled, so the whole sample budget covers the
// trajectory proper.
func (r *Recorder) Observe(site int, golden, delta float64) {
	if !r.armed {
		return
	}
	off := site - r.injSite
	if off < 0 {
		// Pre-injection sites carry structurally zero deltas: not
		// sampled, and not counted either — in any run that reaches its
		// injection the final (highest) site lands in the branch below,
		// so Sites still ends up correct.
		return
	}
	r.sites = site + 1 // sites arrive in execution order
	// Landmarks are tracked exactly, independent of downsampling.
	// maxDelta starts at −1 so the first delta (0 included) always wins
	// without a separate first-sample branch.
	if delta > r.maxDelta {
		r.maxSite = site
		r.maxDelta = delta
		r.maxGolden = golden
	}
	if delta == 0 {
		if r.firstZero < 0 && off > 0 {
			r.firstZero = site
		}
	} else if r.firstBlowup < 0 && blownUp(golden, delta, r.blowupRel) {
		r.firstBlowup = site
	}
	// Stride-doubling downsample: keep sites at (site − injection) ≡ 0
	// (mod stride); on overflow drop every other retained sample and
	// double the stride.
	if off&r.strideMask != 0 {
		return
	}
	if len(r.samples) == r.maxSamples {
		keep := r.samples[:0]
		for i := 0; i < len(r.samples); i += 2 {
			keep = append(keep, r.samples[i])
		}
		r.samples = keep
		r.strideMask = r.strideMask<<1 | 1
		if off&r.strideMask != 0 {
			return
		}
	}
	r.samples = append(r.samples, Sample{Site: site, Delta: Float(delta), Golden: Float(golden)})
}

// blownUp reports whether a non-zero delta exceeds rel·|golden|,
// falling back to the absolute delta when the golden value is (near)
// zero. Callers filter delta == 0 first.
func blownUp(golden, delta, rel float64) bool {
	ag := math.Abs(golden)
	if ag < math.SmallestNonzeroFloat64 {
		return delta > rel
	}
	return delta > rel*ag
}

// EndRun implements campaign.Tracer: close the armed run with its
// classified outcome and deliver the trajectory. crashSite is the
// faulting store for crashed runs, -1 otherwise.
func (r *Recorder) EndRun(outcome string, injErr, outErr float64, crashSite int) {
	if !r.armed {
		return
	}
	r.armed = false
	t := r.cur
	t.Outcome = outcome
	t.InjErr = Float(injErr)
	t.OutErr = Float(outErr)
	t.CrashSite = crashSite
	t.Sites = r.sites
	t.Stride = r.strideMask + 1
	t.Max = Sample{Site: -1}
	if r.maxSite >= 0 {
		t.Max = Sample{Site: r.maxSite, Delta: Float(r.maxDelta), Golden: Float(r.maxGolden)}
	}
	t.FirstZero = r.firstZero
	t.FirstBlowup = r.firstBlowup
	t.Samples = r.samples // zero-copy view; see Sink contract
	r.sink.Consume(t)
}

// Discard is a Sink that drops every trajectory. Useful as a recording
// baseline in benchmarks and as a placeholder sink.
type Discard struct{}

// Consume implements Sink.
func (Discard) Consume(Trajectory) {}

// Buffer is an in-memory Sink.
type Buffer struct {
	mu sync.Mutex
	ts []Trajectory
}

// NewBuffer returns an empty in-memory trajectory sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Consume implements Sink. The retained trajectory owns a copy of the
// samples (the recorder reuses the slice it hands out).
func (b *Buffer) Consume(t Trajectory) {
	s := make([]Sample, len(t.Samples))
	copy(s, t.Samples)
	t.Samples = s
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ts = append(b.ts, t)
}

// Len returns the number of buffered trajectories.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ts)
}

// Trajectories returns the buffered trajectories sorted by campaign run
// index (then injection coordinates), so concurrent campaigns yield a
// deterministic order regardless of worker scheduling.
func (b *Buffer) Trajectories() []Trajectory {
	b.mu.Lock()
	out := make([]Trajectory, len(b.ts))
	copy(out, b.ts)
	b.mu.Unlock()
	sortTrajectories(out)
	return out
}

// sortTrajectories orders by (Run, Site, Bit). Campaigns append in
// worker-completion order, so the slice arrives nearly — but not quite —
// sorted; SortFunc handles the general case without the quadratic
// struct-copy blowup an insertion sort hits on large campaigns.
func sortTrajectories(ts []Trajectory) {
	slices.SortFunc(ts, func(a, b Trajectory) int {
		if c := cmp.Compare(a.Run, b.Run); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Site, b.Site); c != 0 {
			return c
		}
		return cmp.Compare(a.Bit, b.Bit)
	})
}

// label formats an injection coordinate pair compactly ("s100b40").
func label(site int, bit uint8) string {
	return "s" + strconv.Itoa(site) + "b" + strconv.Itoa(int(bit))
}
