package proptrace

import (
	"math"
	"strings"
	"testing"
)

// feed drives a recorder through one synthetic run: site/delta pairs in
// execution order (golden fixed at 1.0 unless overridden per call).
func feed(r *Recorder, run, worker, site int, bit uint8, deltas []float64) {
	r.BeginRun(run, worker, site, bit)
	for i, d := range deltas {
		r.Observe(i, 1.0, d)
	}
	r.EndRun("masked", deltas[site], 0, -1)
}

func TestRecorderLandmarks(t *testing.T) {
	buf := NewBuffer()
	r := NewRecorder(buf, Options{Program: "synthetic"})
	// Injection at site 2: deltas rise to a max of 8 at site 4, blow up
	// (>1.0 relative to golden 1.0) at site 3, and decay to exactly
	// zero at site 6.
	feed(r, 7, 3, 2, 40, []float64{0, 0, 0.5, 2, 8, 0.25, 0, 0})
	ts := buf.Trajectories()
	if len(ts) != 1 {
		t.Fatalf("got %d trajectories", len(ts))
	}
	tr := ts[0]
	if tr.Run != 7 || tr.Worker != 3 || tr.Site != 2 || tr.Bit != 40 {
		t.Errorf("tags: %+v", tr)
	}
	if tr.Program != "synthetic" || tr.Outcome != "masked" {
		t.Errorf("program/outcome: %+v", tr)
	}
	if tr.Sites != 8 {
		t.Errorf("Sites = %d, want 8", tr.Sites)
	}
	if tr.Max.Site != 4 || float64(tr.Max.Delta) != 8 {
		t.Errorf("Max = %+v, want site 4 delta 8", tr.Max)
	}
	if tr.FirstBlowup != 3 {
		t.Errorf("FirstBlowup = %d, want 3", tr.FirstBlowup)
	}
	if tr.FirstZero != 6 {
		t.Errorf("FirstZero = %d, want 6", tr.FirstZero)
	}
	if tr.CrashSite != -1 {
		t.Errorf("CrashSite = %d, want -1", tr.CrashSite)
	}
	// Pre-injection sites are not sampled; stride 1 retains every
	// post-injection site.
	if tr.Stride != 1 || len(tr.Samples) != 6 {
		t.Fatalf("stride %d, %d samples; want 1, 6", tr.Stride, len(tr.Samples))
	}
	if tr.Samples[0].Site != 2 || tr.Samples[5].Site != 7 {
		t.Errorf("sample sites: %+v", tr.Samples)
	}
}

func TestRecorderStrideDoublingBoundsSamples(t *testing.T) {
	buf := NewBuffer()
	const cap = 64
	r := NewRecorder(buf, Options{MaxSamples: cap})
	n := 10_000
	r.BeginRun(0, 0, 0, 1)
	for i := 0; i < n; i++ {
		r.Observe(i, 1.0, 1e-3+float64(i))
	}
	r.EndRun("sdc", 1, 2, -1)
	tr := buf.Trajectories()[0]
	if len(tr.Samples) > cap {
		t.Fatalf("%d samples exceed cap %d", len(tr.Samples), cap)
	}
	if len(tr.Samples) < cap/2 {
		t.Fatalf("%d samples, want at least cap/2 = %d", len(tr.Samples), cap/2)
	}
	if tr.Stride < n/cap {
		t.Errorf("stride %d too small for %d sites at cap %d", tr.Stride, n, cap)
	}
	// Retained samples sit exactly Stride apart, starting at the
	// injection site.
	for i, s := range tr.Samples {
		if s.Site != i*tr.Stride {
			t.Fatalf("sample %d at site %d, want %d", i, s.Site, i*tr.Stride)
		}
	}
	// The maximum (the last, largest delta) is captured exactly even
	// though the last site is rarely on-stride.
	if tr.Max.Site != n-1 {
		t.Errorf("Max.Site = %d, want %d", tr.Max.Site, n-1)
	}
}

func TestRecorderDeterministic(t *testing.T) {
	run := func() Trajectory {
		buf := NewBuffer()
		r := NewRecorder(buf, Options{MaxSamples: 32})
		r.BeginRun(1, 2, 5, 62)
		for i := 0; i < 1000; i++ {
			r.Observe(i, float64(i), float64(i%17)*1e-6)
		}
		r.EndRun("masked", 1e-6, 0, -1)
		return buf.Trajectories()[0]
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) || a.Stride != b.Stride {
		t.Fatalf("nondeterministic downsampling: %d/%d vs %d/%d",
			len(a.Samples), a.Stride, len(b.Samples), b.Stride)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestRecorderCrashRun(t *testing.T) {
	buf := NewBuffer()
	r := NewRecorder(buf, Options{})
	r.BeginRun(0, 0, 3, 62)
	for i := 0; i < 5; i++ { // crash after observing site 4
		r.Observe(i, 1.0, 0)
	}
	r.EndRun("crash", math.Inf(1), math.Inf(1), 5)
	tr := buf.Trajectories()[0]
	if tr.Outcome != "crash" || tr.CrashSite != 5 {
		t.Errorf("%+v", tr)
	}
	if !math.IsInf(float64(tr.InjErr), 1) || !math.IsInf(float64(tr.OutErr), 1) {
		t.Errorf("inf fields lost: %+v", tr)
	}
}

func TestRecorderUnarmedObserveIsNoop(t *testing.T) {
	buf := NewBuffer()
	r := NewRecorder(buf, Options{})
	r.Observe(0, 1, 1) // must not panic or record
	r.EndRun("masked", 0, 0, -1)
	if buf.Len() != 0 {
		t.Errorf("unarmed EndRun recorded a trajectory")
	}
}

func TestBufferSortsByRun(t *testing.T) {
	buf := NewBuffer()
	for _, run := range []int{5, 1, 3} {
		r := NewRecorder(buf, Options{})
		r.BeginRun(run, 0, 0, 0)
		r.Observe(0, 1, 0.5)
		r.EndRun("masked", 0.5, 0, -1)
	}
	ts := buf.Trajectories()
	if ts[0].Run != 1 || ts[1].Run != 3 || ts[2].Run != 5 {
		t.Errorf("order: %d %d %d", ts[0].Run, ts[1].Run, ts[2].Run)
	}
}

func TestAggregateAndRender(t *testing.T) {
	buf := NewBuffer()
	r := NewRecorder(buf, Options{})
	// Two trajectories with decaying errors.
	for run := 0; run < 2; run++ {
		r.BeginRun(run, 0, 0, 40)
		for i := 0; i < 200; i++ {
			r.Observe(i, 1.0, math.Pow(10, -float64(i)/20))
		}
		r.EndRun("masked", 1, 0, -1)
	}
	p := Aggregate(buf.Trajectories(), 200, 40, 8)
	if p.Trajectories != 2 || p.Samples == 0 {
		t.Fatalf("profile: %+v", p)
	}
	out := p.Render("")
	if !strings.Contains(out, "error decay") || !strings.Contains(out, "dynamic instruction 0 .. 199") {
		t.Errorf("render:\n%s", out)
	}
	// A decaying signal must populate more than one row.
	rows := 0
	for _, row := range p.Counts {
		for _, c := range row {
			if c > 0 {
				rows++
				break
			}
		}
	}
	if rows < 3 {
		t.Errorf("decay collapsed into %d rows:\n%s", rows, out)
	}
}

func TestAggregateEmpty(t *testing.T) {
	p := Aggregate(nil, 0, 0, 0)
	if p.Cols != 96 || p.Rows != 16 {
		t.Errorf("defaults: %+v", p)
	}
	if out := p.Render(""); !strings.Contains(out, "0 trajectories") {
		t.Errorf("render:\n%s", out)
	}
}
