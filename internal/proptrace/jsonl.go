package proptrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLWriter is a Sink that streams each trajectory as one JSON line.
// It is safe for concurrent use; write errors latch (inspect with Err)
// so campaign workers never have to handle I/O failures mid-run.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   int
	err error
}

// NewJSONLWriter wraps w as a line-delimited trajectory sink. Call
// Flush when recording is done.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Consume implements Sink.
func (jw *JSONLWriter) Consume(t Trajectory) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	data, err := json.Marshal(t)
	if err != nil {
		jw.err = err
		return
	}
	data = append(data, '\n')
	if _, err := jw.w.Write(data); err != nil {
		jw.err = err
		return
	}
	jw.n++
}

// Count returns the number of trajectories written so far.
func (jw *JSONLWriter) Count() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.n
}

// Flush drains the buffer and returns the first error encountered, if
// any.
func (jw *JSONLWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return jw.err
	}
	jw.err = jw.w.Flush()
	return jw.err
}

// Err returns the latched error, if any.
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// WriteJSONL writes trajectories as line-delimited JSON.
func WriteJSONL(w io.Writer, ts []Trajectory) error {
	jw := NewJSONLWriter(w)
	for _, t := range ts {
		jw.Consume(t)
	}
	return jw.Flush()
}

// ReadJSONL decodes a line-delimited trajectory stream (the inverse of
// WriteJSONL / JSONLWriter). Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Trajectory
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var t Trajectory
		// Zero values that json omits when absent still need their
		// sentinel defaults to survive the round-trip of a trajectory
		// written by other tooling; our own writer always emits them.
		if err := json.Unmarshal(raw, &t); err != nil {
			return nil, fmt.Errorf("proptrace: line %d: %w", line, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
