package proptrace_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"ftb/internal/kernels"
	"ftb/internal/proptrace"
	"ftb/internal/trace"
)

// discard is the no-op baseline sink: diff mode on, recording off.
type discard struct{}

func (discard) Observe(int, float64, float64) {}

// recorderPair holds the interleaved off/on measurement, taken once and
// reported by both sub-benchmarks.
var recorderPair struct {
	once        sync.Once
	offNs, onNs float64
	runs        int
}

// measureRecorderPair times the same batch of diff-mode injection runs
// with a discard sink and with a Recorder, in alternating rounds
// (flipping the order each round) so machine-load drift charges both
// variants equally — the same paired layout the collector benchmark
// uses, which is what makes the <10% acceptance budget checkable. The
// subject is the cholesky kernel at SizeLarge (the size the repo
// defines for benchmarking): its per-store work — a dense column
// update — is representative of real numeric codes, which is what the
// per-dynamic-instruction recording cost must be judged against.
// Measured against a minimal-work-per-store kernel (a bare dependency
// chain, or cg's 7-point sparse rows at test scale) the same fixed
// few-ns per-site cost reads as a large ratio, exactly as the collector
// benchmark notes for its fixed per-run cost.
func measureRecorderPair() {
	const (
		rounds = 12 // plus one warmup round
		nRuns  = 16
	)
	k, err := kernels.New("cholesky", kernels.SizeLarge)
	if err != nil {
		panic(err)
	}
	golden, err := trace.Golden(k)
	if err != nil {
		panic(err)
	}
	sites := golden.Sites()
	rec := proptrace.NewRecorder(proptrace.Discard{}, proptrace.Options{ExpectedSites: golden.Sites()})
	runBatch := func(sink trace.DiffSink, recording bool) time.Duration {
		// Collect before timing so GC debt from the previous batch (the
		// recording variant allocates one trajectory per run) is never
		// charged to the other variant's window.
		runtime.GC()
		start := time.Now()
		var ctx trace.Ctx
		for i := 0; i < nRuns; i++ {
			site := (i * 7919) % sites
			bit := uint(40 + i%8)
			if recording {
				rec.BeginRun(i, 0, site, uint8(bit))
			}
			res, err := trace.RunInjectDiff(&ctx, k, golden, site, bit, sink)
			if err != nil {
				panic(err)
			}
			if recording {
				rec.EndRun("masked", res.InjErr, 0, res.CrashAt)
			}
		}
		return time.Since(start)
	}
	var offTot, onTot time.Duration
	for r := 0; r <= rounds; r++ {
		var off, on time.Duration
		if r%2 == 0 {
			off = runBatch(discard{}, false)
			on = runBatch(rec, true)
		} else {
			on = runBatch(rec, true)
			off = runBatch(discard{}, false)
		}
		if r == 0 {
			continue // warmup: first round pays cache and allocator fills
		}
		offTot += off
		onTot += on
	}
	recorderPair.offNs = float64(offTot.Nanoseconds()) / rounds
	recorderPair.onNs = float64(onTot.Nanoseconds()) / rounds
	recorderPair.runs = nRuns
}

// BenchmarkRecorder reports trajectory recording overhead on diff-mode
// injection runs: the same runs with a discard sink ("off") and with
// a Recorder capturing full trajectories ("on"), measured interleaved
// (see measureRecorderPair). ns/op is per batch of runs/op injections.
// The on/off pair must stay within the 10% acceptance budget.
func BenchmarkRecorder(b *testing.B) {
	for _, mode := range []struct {
		name string
		ns   *float64
	}{
		{"off", &recorderPair.offNs},
		{"on", &recorderPair.onNs},
	} {
		b.Run(mode.name, func(b *testing.B) {
			recorderPair.once.Do(measureRecorderPair)
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(*mode.ns, "ns/op")
			b.ReportMetric(float64(recorderPair.runs), "runs/op")
		})
	}
}
