package proptrace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Chrome trace-event export: trajectories rendered as a trace-event
// JSON object loadable in Perfetto or chrome://tracing. The mapping
// treats the dynamic instruction stream as the timeline — one
// microsecond per dynamic instruction — so the propagation structure
// scrubs like a profile:
//
//   - each trajectory is one "thread" (tid = campaign run index), named
//     by its injection coordinates;
//   - a complete ("X") slice spans injection site → last observed site,
//     carrying outcome/injErr/outErr args;
//   - a counter ("C") track plots log10 of the retained deltas, so the
//     decay curve is visible directly in the counter graph;
//   - instant ("i") events mark the exact landmarks: max deviation,
//     first-zero, first-blowup, and the crash site.
//
// Counters must be finite; non-finite log values clamp to ±logClamp.
const logClamp = 350

// chromeEvent is one trace event. Fields follow the Trace Event Format
// spec (ph/ts/dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// log10OrClamp maps a delta to a finite log10 value for counter tracks.
func log10OrClamp(d float64) float64 {
	if math.IsNaN(d) {
		return logClamp // NaN is an unsafe value, plot with blowups
	}
	if d <= 0 {
		return -logClamp
	}
	l := math.Log10(d)
	switch {
	case math.IsInf(l, 1) || l > logClamp:
		return logClamp
	case l < -logClamp:
		return -logClamp
	}
	return l
}

// WriteChromeTrace writes trajectories in Chrome trace-event format.
// program labels the process track; trajectories keep their own
// per-thread labels.
func WriteChromeTrace(w io.Writer, program string, ts []Trajectory) error {
	const pid = 1
	if program == "" {
		program = "ftb"
	}
	trace := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"generator": "ftb proptrace",
			"timeline":  "1us = 1 dynamic instruction",
		},
	}
	ev := func(e chromeEvent) { trace.TraceEvents = append(trace.TraceEvents, e) }
	ev(chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "ftb error propagation: " + program},
	})
	for i, t := range ts {
		tid := t.Run
		if tid < 0 {
			tid = i
		}
		ev(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("inject %s (%s)", label(t.Site, t.Bit), t.Outcome)},
		})
		end := t.Sites
		if end <= t.Site {
			end = t.Site + 1
		}
		ev(chromeEvent{
			Name: "trajectory " + label(t.Site, t.Bit), Ph: "X", Pid: pid, Tid: tid,
			Ts: float64(t.Site), Dur: float64(end - t.Site),
			Args: map[string]any{
				"outcome":    t.Outcome,
				"inj_err":    formatFloat(t.InjErr),
				"out_err":    formatFloat(t.OutErr),
				"worker":     t.Worker,
				"stride":     t.Stride,
				"sites":      t.Sites,
				"crash_site": t.CrashSite,
			},
		})
		counter := "log10|delta| " + label(t.Site, t.Bit)
		for _, s := range t.Samples {
			ev(chromeEvent{
				Name: counter, Ph: "C", Pid: pid, Tid: tid,
				Ts:   float64(s.Site),
				Args: map[string]any{"log10delta": log10OrClamp(float64(s.Delta))},
			})
		}
		mark := func(name string, site int, extra map[string]any) {
			if site < 0 {
				return
			}
			e := chromeEvent{Name: name, Ph: "i", Pid: pid, Tid: tid, Ts: float64(site), S: "t"}
			e.Args = extra
			ev(e)
		}
		if t.Max.Site >= 0 {
			mark("max delta", t.Max.Site, map[string]any{"delta": formatFloat(t.Max.Delta)})
		}
		mark("first zero", t.FirstZero, nil)
		mark("first blowup", t.FirstBlowup, nil)
		mark("crash", t.CrashSite, nil)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// formatFloat renders a Float for event args: finite values stay
// numeric, non-finite become strings (trace-event args are free-form,
// but the envelope must remain valid JSON).
func formatFloat(f Float) any {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		b, _ := f.MarshalJSON()
		var s string
		_ = json.Unmarshal(b, &s)
		return s
	}
	return v
}
