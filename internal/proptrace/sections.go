package proptrace

import (
	"math"

	"ftb/internal/sections"
)

// SectionStat aggregates recorded trajectories over one compositional
// section: how many injections landed in it, how many runs died in it,
// and how large the sampled deviations passing through it were. It is
// the trajectory-side view of a section's error transfer — the exact,
// boundary-sampled view lives in the campaign's calibration summaries.
type SectionStat struct {
	Section sections.Section `json:"section"`
	// Injections counts trajectories whose injection site lies in the
	// section; Crashes counts trajectories whose crash site does.
	Injections int `json:"injections"`
	Crashes    int `json:"crashes"`
	// Traversals counts trajectories with at least one retained sample
	// in the section (downsampling can skip short sections).
	Traversals int `json:"traversals"`
	// MaxDelta is the largest retained deviation sampled inside the
	// section; MeanDelta averages the retained samples. Both are
	// downsampled views, not exact extrema (except that a trajectory's
	// global Max landmark is exact and is folded into its section).
	MaxDelta  Float `json:"max_delta"`
	MeanDelta Float `json:"mean_delta"`

	sum     float64
	samples int
}

// AggregateSections folds trajectories into per-section statistics: the
// per-section error-decay profile of a traced campaign. Samples outside
// every section (a trajectory recorded against a different layout) are
// ignored.
func AggregateSections(ts []Trajectory, secs []sections.Section) []SectionStat {
	out := make([]SectionStat, len(secs))
	for i, s := range secs {
		out[i].Section = s
	}
	seen := make([]bool, len(secs))
	for _, t := range ts {
		if i := sections.Find(secs, t.Site); i >= 0 {
			out[i].Injections++
		}
		if t.CrashSite >= 0 {
			if i := sections.Find(secs, t.CrashSite); i >= 0 {
				out[i].Crashes++
			}
		}
		for i := range seen {
			seen[i] = false
		}
		fold := func(s Sample) {
			i := sections.Find(secs, s.Site)
			if i < 0 {
				return
			}
			st := &out[i]
			if !seen[i] {
				seen[i] = true
				st.Traversals++
			}
			d := float64(s.Delta)
			if math.IsNaN(d) {
				return
			}
			if d > float64(st.MaxDelta) {
				st.MaxDelta = Float(d)
			}
			if !math.IsInf(d, 0) {
				st.sum += d
				st.samples++
			}
		}
		for _, s := range t.Samples {
			fold(s)
		}
		// The global extremum landmark is exact regardless of the
		// stride; folding it in keeps MaxDelta honest for sections the
		// downsampler skipped over.
		fold(t.Max)
	}
	for i := range out {
		if out[i].samples > 0 {
			out[i].MeanDelta = Float(out[i].sum / float64(out[i].samples))
		}
	}
	return out
}
