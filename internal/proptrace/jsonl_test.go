package proptrace

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleTrajectories exercises every serialization edge: non-finite
// floats, absent landmarks, empty sample lists, and crash metadata.
func sampleTrajectories() []Trajectory {
	return []Trajectory{
		{
			Program: "cg", Run: 0, Worker: 1, Site: 10, Bit: 40,
			Outcome: "masked", InjErr: 0.5, OutErr: 0,
			CrashSite: -1, Sites: 100, Stride: 1,
			Samples: []Sample{
				{Site: 10, Delta: 0.5, Golden: 1},
				{Site: 11, Delta: 0.25, Golden: 2},
				{Site: 12, Delta: 0, Golden: 3},
			},
			Max: Sample{Site: 10, Delta: 0.5, Golden: 1}, FirstZero: 12, FirstBlowup: -1,
		},
		{
			Program: "cg", Run: 1, Worker: 0, Site: 20, Bit: 62,
			Outcome: "crash", InjErr: Float(math.Inf(1)), OutErr: Float(math.Inf(1)),
			CrashSite: 25, Sites: 26, Stride: 2,
			Samples: []Sample{
				{Site: 20, Delta: Float(math.Inf(1)), Golden: 1},
				{Site: 22, Delta: Float(math.NaN()), Golden: Float(math.Inf(-1))},
			},
			Max: Sample{Site: 20, Delta: Float(math.Inf(1)), Golden: 1}, FirstZero: -1, FirstBlowup: 20,
		},
		{
			Run: 2, Worker: -1, Site: 0, Bit: 0,
			Outcome: "sdc", InjErr: 1e-300, OutErr: 1e12,
			CrashSite: -1, Sites: 1, Stride: 1,
			Samples: []Sample{},
			Max:     Sample{Site: 0, Delta: 1e-300, Golden: 0}, FirstZero: -1, FirstBlowup: 0,
		},
	}
}

// trajectoriesEqual compares with NaN-aware float semantics
// (reflect.DeepEqual treats NaN != NaN).
func trajectoriesEqual(a, b Trajectory) bool {
	sa, sb := a.Samples, b.Samples
	a.Samples, b.Samples = nil, nil
	na := func(f Float) bool { return math.IsNaN(float64(f)) }
	scrub := func(t *Trajectory) {
		if na(t.InjErr) {
			t.InjErr = 0
		}
		if na(t.OutErr) {
			t.OutErr = 0
		}
	}
	nanA, nanB := na(a.InjErr) || na(a.OutErr), na(b.InjErr) || na(b.OutErr)
	if na(a.InjErr) != na(b.InjErr) || na(a.OutErr) != na(b.OutErr) {
		return false
	}
	if nanA || nanB {
		scrub(&a)
		scrub(&b)
	}
	if !reflect.DeepEqual(a, b) {
		return false
	}
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		x, y := sa[i], sb[i]
		if x.Site != y.Site {
			return false
		}
		for _, p := range [][2]Float{{x.Delta, y.Delta}, {x.Golden, y.Golden}} {
			if na(p[0]) != na(p[1]) {
				return false
			}
			if !na(p[0]) && p[0] != p[1] {
				return false
			}
		}
	}
	return true
}

func TestJSONLRoundTrip(t *testing.T) {
	want := sampleTrajectories()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("%d lines for %d trajectories", lines, len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip count: %d != %d", len(got), len(want))
	}
	for i := range want {
		// ReadJSONL decodes empty sample arrays as empty (possibly nil)
		// slices; normalize before comparing.
		if len(got[i].Samples) == 0 {
			got[i].Samples = []Sample{}
		}
		if len(want[i].Samples) == 0 {
			want[i].Samples = []Sample{}
		}
		if !trajectoriesEqual(got[i], want[i]) {
			t.Errorf("trajectory %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				jw.Consume(Trajectory{Run: w*25 + i, CrashSite: -1, FirstZero: -1, FirstBlowup: -1})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if err := jw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if jw.Count() != 100 {
		t.Errorf("count = %d", jw.Count())
	}
	ts, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(ts) != 100 {
		t.Errorf("read %d trajectories", len(ts))
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"run\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestFloatMarshal(t *testing.T) {
	cases := []struct {
		f    float64
		want string
	}{
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
		{math.NaN(), `"NaN"`},
		{1.5, `1.5`},
		{0, `0`},
	}
	for _, c := range cases {
		b, err := json.Marshal(Float(c.f))
		if err != nil {
			t.Fatalf("marshal %v: %v", c.f, err)
		}
		if string(b) != c.want {
			t.Errorf("marshal %v = %s, want %s", c.f, b, c.want)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.IsNaN(c.f) {
			if !math.IsNaN(float64(back)) {
				t.Errorf("NaN round-trip = %v", back)
			}
		} else if float64(back) != c.f {
			t.Errorf("round-trip %v = %v", c.f, back)
		}
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "cg", sampleTrajectories()); err != nil {
		t.Fatalf("write: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for _, ev := range trace.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["pid"]; !ok {
			t.Errorf("event missing pid: %v", ev)
		}
	}
	// Metadata, slices, counters, and instant landmarks must all appear.
	for _, ph := range []string{"M", "X", "C", "i"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events: %v", ph, phases)
		}
	}
	if !strings.Contains(buf.String(), "ftb error propagation: cg") {
		t.Error("process name missing")
	}
}
