package proptrace

import (
	"fmt"
	"math"

	"ftb/internal/textplot"
)

// DecayProfile folds many trajectories into a per-dynamic-instruction
// error-decay raster: columns bucket the dynamic instruction stream,
// rows bucket log10 of the propagation error, and each cell counts
// retained samples landing there. Rendered as a heatmap it shows, at a
// glance, where in the program injected errors persist, decay, or blow
// up — the aggregate form of the paper's Figure 2.
type DecayProfile struct {
	// Sites is the x-extent (dynamic instructions covered).
	Sites int
	// Cols and Rows are the raster dimensions.
	Cols, Rows int
	// MinLog and MaxLog bound the y-axis (log10 delta). Zero deltas
	// land in the bottom row (an exact zero is "fully decayed", below
	// any finite log).
	MinLog, MaxLog float64
	// Counts is the raster, row-major, row 0 = MaxLog (top).
	Counts [][]int64
	// Trajectories and Samples tally what was folded in.
	Trajectories, Samples int
}

// Aggregate builds a decay profile over the trajectories. sites is the
// program's dynamic-instruction count (the x-extent; trajectories know
// only how far they ran). cols and rows size the raster; values ≤ 0
// get terminal-friendly defaults (96×16).
func Aggregate(ts []Trajectory, sites, cols, rows int) *DecayProfile {
	if cols <= 0 {
		cols = 96
	}
	if rows <= 0 {
		rows = 16
	}
	if sites <= 0 {
		for _, t := range ts {
			if t.Sites > sites {
				sites = t.Sites
			}
		}
		if sites == 0 {
			sites = 1
		}
	}
	// Pass 1: the finite log range actually observed.
	minLog, maxLog := math.Inf(1), math.Inf(-1)
	for _, t := range ts {
		for _, s := range t.Samples {
			d := float64(s.Delta)
			if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
				continue
			}
			l := math.Log10(d)
			minLog = math.Min(minLog, l)
			maxLog = math.Max(maxLog, l)
		}
	}
	if math.IsInf(minLog, 1) { // no non-zero finite samples
		minLog, maxLog = -1, 0
	}
	if maxLog == minLog {
		maxLog = minLog + 1
	}
	p := &DecayProfile{
		Sites:  sites,
		Cols:   cols,
		Rows:   rows,
		MinLog: minLog,
		MaxLog: maxLog,
		Counts: make([][]int64, rows),
	}
	for i := range p.Counts {
		p.Counts[i] = make([]int64, cols)
	}
	for _, t := range ts {
		p.Trajectories++
		for _, s := range t.Samples {
			p.add(s)
		}
	}
	return p
}

// add buckets one sample into the raster.
func (p *DecayProfile) add(s Sample) {
	col := s.Site * p.Cols / p.Sites
	if col < 0 {
		col = 0
	}
	if col >= p.Cols {
		col = p.Cols - 1
	}
	d := float64(s.Delta)
	var row int
	switch {
	case d <= 0: // exact zero: fully decayed, bottom row
		row = p.Rows - 1
	case math.IsInf(d, 1) || math.IsNaN(d):
		row = 0
	default:
		l := math.Log10(d)
		// Row 0 is MaxLog; rows descend toward MinLog.
		frac := (p.MaxLog - l) / (p.MaxLog - p.MinLog)
		row = int(frac * float64(p.Rows-1))
		if row < 0 {
			row = 0
		}
		if row >= p.Rows {
			row = p.Rows - 1
		}
	}
	p.Counts[row][col]++
	p.Samples++
}

// Render draws the profile as a textplot heatmap.
func (p *DecayProfile) Render(title string) string {
	if title == "" {
		title = fmt.Sprintf("error decay: log10|delta| per dynamic instruction (%d trajectories, %d samples)",
			p.Trajectories, p.Samples)
	}
	return textplot.Heatmap(
		title,
		p.Counts,
		fmt.Sprintf("%8.3g", p.MaxLog),
		fmt.Sprintf("%8.3g", p.MinLog),
		fmt.Sprintf("dynamic instruction 0 .. %d (bottom row = exactly zero / masked)", p.Sites-1),
	)
}
