package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodDoc = `# A full-featured scenario document.
name: stencil-burst3
description: burst of 3 flips across the full word
kernel: stencil
size: test
fault: burst3        # trailing comments are stripped
mode: exhaustive
expect:
  experiments: 640
  crash: 100
  max_sdc_pct: 40.5
`

func TestParseGood(t *testing.T) {
	sc, err := Parse([]byte(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "stencil-burst3" || sc.Kernel != "stencil" || sc.Fault != "burst3" {
		t.Fatalf("parsed %+v", sc)
	}
	if sc.Expect.Experiments != 640 || sc.Expect.Crash != 100 {
		t.Fatalf("expect block %+v", sc.Expect)
	}
	if sc.Expect.Masked != Unset || sc.Expect.SDC != Unset {
		t.Fatalf("omitted gates should stay Unset: %+v", sc.Expect)
	}
	if sc.Expect.MaxSDCPct != 40.5 || sc.Expect.MinMaskedPct != Unset {
		t.Fatalf("pct gates %+v", sc.Expect)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseStrictness(t *testing.T) {
	cases := []struct {
		label string
		doc   string
		want  string
	}{
		{"unknown key", "name: a\nbogus: 1\n", "unknown key"},
		{"duplicate key", "name: a\nname: b\n", "duplicate key"},
		{"duplicate expect key", "expect:\n  sdc: 1\n  sdc: 2\n", "duplicate key"},
		{"indent outside expect", "name: a\n  sdc: 1\n", "outside an expect block"},
		{"wrong indent", "expect:\n   sdc: 1\n", "exactly two spaces"},
		{"expect takes no value", "expect: 3\n", "takes no value"},
		{"no colon", "name\n", "key: value"},
		{"bad int", "samples: many\n", "samples"},
		{"bad seed", "seed: -1\n", "seed"},
		{"expect key at top level", "experiments: 3\n", "unknown key"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.label, err, c.want)
		}
	}
	// Top-level keys after the expect block close it.
	sc, err := Parse([]byte("expect:\n  sdc: 1\nname: ok\n"))
	if err != nil || sc.Name != "ok" || sc.Expect.SDC != 1 {
		t.Fatalf("block close: %+v, %v", sc, err)
	}
}

func TestValidate(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{Name: "s", Kernel: "stencil", Expect: NewExpect()}
	}
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label string
		mut   func(*Scenario)
	}{
		{"bad name", func(s *Scenario) { s.Name = "No Caps" }},
		{"no kernel", func(s *Scenario) { s.Kernel = "" }},
		{"unknown kernel", func(s *Scenario) { s.Kernel = "nope" }},
		{"unknown size", func(s *Scenario) { s.Size = "huge" }},
		{"bad fault", func(s *Scenario) { s.Fault = "nonsense" }},
		{"fault too wide", func(s *Scenario) { s.Kernel = "stencil32"; s.Fault = "multi40" }},
		{"bad mode", func(s *Scenario) { s.Mode = "random" }},
		{"sample without budget", func(s *Scenario) { s.Mode = ModeSample }},
		{"sample with both budgets", func(s *Scenario) { s.Mode = ModeSample; s.Samples = 3; s.SampleFrac = 0.1 }},
		{"budget without sample mode", func(s *Scenario) { s.Samples = 3 }},
		{"negative tolerance", func(s *Scenario) { s.Tolerance = -1 }},
		{"negative workers", func(s *Scenario) { s.Workers = -1 }},
		{"pct out of range", func(s *Scenario) { s.Expect.MaxSDCPct = 140 }},
		{"count below -1", func(s *Scenario) { s.Expect.Crash = -3 }},
		{"inconsistent sum", func(s *Scenario) {
			s.Expect.Experiments = 10
			s.Expect.Masked, s.Expect.SDC, s.Expect.Crash = 1, 2, 3
		}},
	}
	for _, c := range cases {
		s := base()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.label)
		}
	}
	ok := base()
	ok.Mode = ModeSample
	ok.Samples = 5
	ok.Seed = 7
	if err := ok.Validate(); err != nil {
		t.Errorf("sample mode: %v", err)
	}
}

func TestExpectCheck(t *testing.T) {
	e := NewExpect()
	if fails := e.Check(10, 5, 3, 2); len(fails) != 0 {
		t.Fatalf("all-unset expect failed: %v", fails)
	}
	e.Experiments, e.Crash = 10, 2
	if fails := e.Check(10, 5, 3, 2); len(fails) != 0 {
		t.Fatalf("passing gates failed: %v", fails)
	}
	if fails := e.Check(10, 5, 4, 1); len(fails) != 1 {
		t.Fatalf("crash mismatch: %v", fails)
	}
	pct := NewExpect()
	pct.MaxSDCPct = 25
	pct.MinMaskedPct = 50
	if fails := pct.Check(100, 60, 20, 20); len(fails) != 0 {
		t.Fatalf("pct pass: %v", fails)
	}
	if fails := pct.Check(100, 40, 30, 30); len(fails) != 2 {
		t.Fatalf("pct fail: %v", fails)
	}
	// An explicit zero gate is enforced, not treated as unset.
	zero := NewExpect()
	zero.Crash = 0
	if fails := zero.Check(10, 9, 0, 1); len(fails) != 1 {
		t.Fatalf("crash: 0 gate not enforced: %v", fails)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.yaml", "name: beta\nkernel: cg\n")
	write("a.yaml", goodDoc)
	write("notes.txt", "not a scenario")
	scs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[0].Name != "stencil-burst3" || scs[1].Name != "beta" {
		t.Fatalf("loaded %d scenarios: %+v", len(scs), scs)
	}
	write("c.yaml", "name: beta\nkernel: cg\n")
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "already used") {
		t.Fatalf("duplicate name: %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}
