// Package scenario loads and validates declarative fault-scenario files:
// checked-in YAML documents that bind a kernel, a size preset, a fault
// model, a campaign mode, and the gates the campaign's outcome must pass.
// Scenarios make resiliency regressions executable — `ftbcli scenario run`
// executes every scenario in a directory and fails if any gate is
// violated, and the crashtest harness replays them under SIGKILL.
//
// The file format is a strict subset of YAML, parsed by hand so the
// module stays stdlib-only: top-level `key: value` lines, one optional
// `expect:` block whose keys are indented by exactly two spaces, `#`
// comments (full-line, or trailing after ` #`), and blank lines. Unknown
// keys, duplicate keys, and malformed values are errors — a scenario
// that parses is a scenario whose every line is meaningful.
//
//	name: stencil-burst3            # [a-z0-9-]+, unique per suite
//	kernel: stencil                 # a built-in kernel name
//	size: test                      # test | small | paper | large
//	fault: burst3                   # canonical fault-model string
//	mode: exhaustive                # exhaustive | sample
//	expect:
//	  experiments: 640
//	  crash: 129
//
// Fixed seeds plus the engine's determinism contract make every scenario
// outcome reproducible bit-for-bit: the same file always produces the
// same counts, on any worker layout.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ftb/internal/bits"
	"ftb/internal/kernels"
)

// Unset marks an Expect count gate that the scenario does not check.
const Unset = -1

// Expect is the gate block of a scenario: exact outcome counts and
// percentage bounds the campaign result must satisfy. Count fields use
// Unset (-1) for "not checked" so an explicit zero (e.g. `crash: 0`)
// remains expressible.
type Expect struct {
	// Experiments is the exact experiment count (sites × population in
	// exhaustive mode, the sample budget in sample mode).
	Experiments int
	// Masked, SDC, Crash are exact per-outcome counts.
	Masked int
	SDC    int
	Crash  int
	// MaxSDCPct bounds the SDC percentage of the run from above
	// (negative = not checked).
	MaxSDCPct float64
	// MinMaskedPct bounds the masked percentage from below
	// (negative = not checked).
	MinMaskedPct float64
}

// NewExpect returns an Expect with every gate unset.
func NewExpect() Expect {
	return Expect{Experiments: Unset, Masked: Unset, SDC: Unset, Crash: Unset, MaxSDCPct: Unset, MinMaskedPct: Unset}
}

// Check evaluates the gates against a completed campaign's outcome
// counts and returns one message per violation (empty = all gates pass).
func (e Expect) Check(experiments, masked, sdc, crash int) []string {
	var fails []string
	exact := func(gate string, want, got int) {
		if want != Unset && got != want {
			fails = append(fails, fmt.Sprintf("%s = %d, want %d", gate, got, want))
		}
	}
	exact("experiments", e.Experiments, experiments)
	exact("masked", e.Masked, masked)
	exact("sdc", e.SDC, sdc)
	exact("crash", e.Crash, crash)
	if experiments > 0 {
		if e.MaxSDCPct >= 0 {
			if pct := 100 * float64(sdc) / float64(experiments); pct > e.MaxSDCPct {
				fails = append(fails, fmt.Sprintf("sdc %.2f%% above max_sdc_pct %g", pct, e.MaxSDCPct))
			}
		}
		if e.MinMaskedPct >= 0 {
			if pct := 100 * float64(masked) / float64(experiments); pct < e.MinMaskedPct {
				fails = append(fails, fmt.Sprintf("masked %.2f%% below min_masked_pct %g", pct, e.MinMaskedPct))
			}
		}
	}
	return fails
}

// Scenario is one declarative fault scenario.
type Scenario struct {
	// Name identifies the scenario ([a-z0-9-]+).
	Name string
	// Description is free-form documentation.
	Description string
	// Kernel is the built-in kernel name.
	Kernel string
	// Size is the kernel size preset (default "test").
	Size string
	// Fault is the canonical fault-model string ("" = single-bit flip).
	Fault string
	// Mode selects the campaign: "exhaustive" (default) covers the full
	// experiment space; "sample" draws a fixed-seed uniform sample.
	Mode string
	// Seed drives sample selection in sample mode.
	Seed uint64
	// SampleFrac is the sample-mode budget as a fraction of the space.
	SampleFrac float64
	// Samples is the sample-mode budget as an absolute count
	// (mutually exclusive with SampleFrac).
	Samples int
	// Tolerance overrides the kernel's default output tolerance when
	// positive.
	Tolerance float64
	// Workers caps campaign parallelism (0 = engine default).
	Workers int
	// Expect gates the campaign outcome.
	Expect Expect
	// Path is the source file (set by ParseFile / LoadDir).
	Path string
}

// Modes.
const (
	ModeExhaustive = "exhaustive"
	ModeSample     = "sample"
)

var sizes = []string{kernels.SizeTest, kernels.SizeSmall, kernels.SizePaper, kernels.SizeLarge}

// Validate checks the scenario for structural soundness: the kernel
// exists, the size preset and mode are known, the fault model parses and
// fits the kernel's width, sample budgets are consistent, and gate
// values are in range. It is cheap (the kernel is probed at test size)
// and does not run any campaign.
func (s *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %v", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario (%s): name is required", s.Path)
	}
	for _, r := range s.Name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fail("name must match [a-z0-9-]+")
		}
	}
	if s.Kernel == "" {
		return fail("kernel is required")
	}
	// Probe at test size: kernel existence and width are size-independent,
	// and test-size construction is cheap even for the large presets.
	k, err := kernels.New(s.Kernel, kernels.SizeTest)
	if err != nil {
		return fail("%v", err)
	}
	size := s.Size
	if size == "" {
		size = kernels.SizeTest
	}
	validSize := false
	for _, known := range sizes {
		validSize = validSize || size == known
	}
	if !validSize {
		return fail("size %q not one of %v", s.Size, sizes)
	}
	model, err := bits.ParseFaultModel(s.Fault)
	if err != nil {
		return fail("%v", err)
	}
	if err := model.Validate(k.Width()); err != nil {
		return fail("%v", err)
	}
	switch s.Mode {
	case "", ModeExhaustive:
		if s.SampleFrac != 0 || s.Samples != 0 {
			return fail("sample_frac/samples apply to mode sample only")
		}
	case ModeSample:
		if (s.SampleFrac > 0) == (s.Samples > 0) {
			return fail("mode sample requires exactly one of sample_frac or samples")
		}
		if s.SampleFrac < 0 || s.SampleFrac > 1 {
			return fail("sample_frac %g outside (0, 1]", s.SampleFrac)
		}
	default:
		return fail("mode %q not one of exhaustive, sample", s.Mode)
	}
	if s.Tolerance < 0 {
		return fail("tolerance %g must not be negative", s.Tolerance)
	}
	if s.Workers < 0 {
		return fail("workers %d must not be negative", s.Workers)
	}
	e := s.Expect
	for gate, v := range map[string]int{"experiments": e.Experiments, "masked": e.Masked, "sdc": e.SDC, "crash": e.Crash} {
		if v < Unset {
			return fail("expect.%s %d must be a count or omitted", gate, v)
		}
	}
	for gate, v := range map[string]float64{"max_sdc_pct": e.MaxSDCPct, "min_masked_pct": e.MinMaskedPct} {
		if v != Unset && (v < 0 || v > 100) {
			return fail("expect.%s %g outside [0, 100]", gate, v)
		}
	}
	if e.Experiments != Unset && e.Masked != Unset && e.SDC != Unset && e.Crash != Unset {
		if sum := e.Masked + e.SDC + e.Crash; sum != e.Experiments {
			return fail("expect counts sum to %d, experiments says %d", sum, e.Experiments)
		}
	}
	return nil
}

// EffectiveSize returns the size preset with the default applied.
func (s *Scenario) EffectiveSize() string {
	if s.Size == "" {
		return kernels.SizeTest
	}
	return s.Size
}

// EffectiveMode returns the campaign mode with the default applied.
func (s *Scenario) EffectiveMode() string {
	if s.Mode == "" {
		return ModeExhaustive
	}
	return s.Mode
}

// Parse parses one scenario document. src must follow the strict subset
// described in the package documentation; every violation is an error
// with a line number.
func Parse(src []byte) (*Scenario, error) {
	sc := &Scenario{Expect: NewExpect()}
	seen := map[string]bool{}
	inExpect := false
	for ln, raw := range strings.Split(strings.ReplaceAll(string(src), "\r\n", "\n"), "\n") {
		lineNo := ln + 1
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		nested := strings.HasPrefix(line, " ")
		if nested {
			if !inExpect {
				return nil, fmt.Errorf("line %d: indented line outside an expect block", lineNo)
			}
			if !strings.HasPrefix(line, "  ") || strings.HasPrefix(line, "   ") {
				return nil, fmt.Errorf("line %d: expect keys must be indented by exactly two spaces", lineNo)
			}
		} else {
			inExpect = false
		}
		key, value, ok := strings.Cut(strings.TrimSpace(line), ":")
		if !ok {
			return nil, fmt.Errorf("line %d: want `key: value`", lineNo)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		full := key
		if nested {
			full = "expect." + key
		}
		if seen[full] {
			return nil, fmt.Errorf("line %d: duplicate key %q", lineNo, full)
		}
		seen[full] = true
		if err := sc.set(full, value, &inExpect); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	return sc, nil
}

// stripComment removes a full-line or trailing ` #` comment. Values
// therefore cannot contain a space-hash sequence; scenario values never
// need one.
func stripComment(line string) string {
	if strings.HasPrefix(strings.TrimSpace(line), "#") {
		return ""
	}
	if i := strings.Index(line, " #"); i >= 0 {
		return line[:i]
	}
	return line
}

// set assigns one parsed key. inExpect flips when the expect block opens.
func (sc *Scenario) set(key, value string, inExpect *bool) error {
	atoi := func(dst *int) error {
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("%s: %v", key, err)
		}
		*dst = n
		return nil
	}
	atof := func(dst *float64) error {
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("%s: %v", key, err)
		}
		*dst = f
		return nil
	}
	switch key {
	case "name":
		sc.Name = value
	case "description":
		sc.Description = value
	case "kernel":
		sc.Kernel = value
	case "size":
		sc.Size = value
	case "fault":
		sc.Fault = value
	case "mode":
		sc.Mode = value
	case "seed":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("seed: %v", err)
		}
		sc.Seed = n
	case "sample_frac":
		return atof(&sc.SampleFrac)
	case "samples":
		return atoi(&sc.Samples)
	case "tolerance":
		return atof(&sc.Tolerance)
	case "workers":
		return atoi(&sc.Workers)
	case "expect":
		if value != "" {
			return fmt.Errorf("expect: opens a block and takes no value (got %q)", value)
		}
		*inExpect = true
	case "expect.experiments":
		return atoi(&sc.Expect.Experiments)
	case "expect.masked":
		return atoi(&sc.Expect.Masked)
	case "expect.sdc":
		return atoi(&sc.Expect.SDC)
	case "expect.crash":
		return atoi(&sc.Expect.Crash)
	case "expect.max_sdc_pct":
		return atof(&sc.Expect.MaxSDCPct)
	case "expect.min_masked_pct":
		return atof(&sc.Expect.MinMaskedPct)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// ParseFile parses and validates one scenario file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc.Path = path
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// LoadDir parses and validates every *.yaml / *.yml file directly inside
// dir, sorted by file name, and rejects duplicate scenario names.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ext := filepath.Ext(e.Name()); ext == ".yaml" || ext == ".yml" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no scenario files (*.yaml)", dir)
	}
	byName := map[string]string{}
	scs := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		sc, err := ParseFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[sc.Name]; dup {
			return nil, fmt.Errorf("%s: scenario name %q already used by %s", p, sc.Name, prev)
		}
		byName[sc.Name] = p
		scs = append(scs, sc)
	}
	return scs, nil
}
