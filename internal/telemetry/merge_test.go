package telemetry

import (
	"math"
	"testing"
	"time"

	"ftb/internal/outcome"
)

// shardSnapshot builds a realistic snapshot by driving a private
// collector the way the engine does.
func shardSnapshot(t *testing.T, phase string, runs int, kind outcome.Kind) Snapshot {
	t.Helper()
	c := New()
	rec := c.StartCampaign(phase, runs, 2)
	for i := 0; i < runs; i++ {
		rec.Run(i%2, kind, time.Duration(i+1)*time.Microsecond)
	}
	rec.Wait(0, 3*time.Microsecond)
	rec.End()
	return c.Snapshot()
}

func TestSnapshotMerge(t *testing.T) {
	var merged Snapshot
	a := shardSnapshot(t, "exhaustive", 10, outcome.Masked)
	b := shardSnapshot(t, "exhaustive", 6, outcome.SDC)
	if err := merged.Merge(a, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b, "w2"); err != nil {
		t.Fatal(err)
	}
	if merged.Campaigns != 2 {
		t.Errorf("Campaigns = %d, want 2", merged.Campaigns)
	}
	if merged.Experiments != 16 {
		t.Errorf("Experiments = %d, want 16", merged.Experiments)
	}
	if merged.Outcomes.Masked != 10 || merged.Outcomes.SDC != 6 {
		t.Errorf("Outcomes = %+v, want 10 masked / 6 sdc", merged.Outcomes)
	}
	ph := merged.Phases["exhaustive"]
	if ph.Experiments != 16 || ph.Campaigns != 2 {
		t.Errorf("phase = %+v, want 16 experiments over 2 campaigns", ph)
	}
	// Histograms sum bucket-wise: total count matches, final bucket is
	// cumulative-total on both sides.
	if merged.RunLatency.Count != 16 {
		t.Errorf("RunLatency.Count = %d, want 16", merged.RunLatency.Count)
	}
	last := merged.RunLatency.Buckets[len(merged.RunLatency.Buckets)-1]
	if last.LE != "+Inf" || last.Count != 16 {
		t.Errorf("final bucket = %+v, want +Inf/16", last)
	}
	wantSum := a.RunLatency.SumSeconds + b.RunLatency.SumSeconds
	if math.Abs(merged.RunLatency.SumSeconds-wantSum) > 1e-12 {
		t.Errorf("RunLatency.SumSeconds = %g, want %g", merged.RunLatency.SumSeconds, wantSum)
	}
	// Worker rows are namespaced per shard, not collapsed.
	if len(merged.Workers) != 4 {
		t.Fatalf("Workers = %d rows, want 4 (2 shards × 2 workers)", len(merged.Workers))
	}
	shards := map[string]int64{}
	for _, w := range merged.Workers {
		if w.Shard == "" {
			t.Errorf("worker %d lost its shard namespace", w.Worker)
		}
		shards[w.Shard] += w.Experiments
	}
	if shards["w1"] != 10 || shards["w2"] != 6 {
		t.Errorf("per-shard experiments = %v, want w1:10 w2:6", shards)
	}
}

func TestSnapshotMergeSections(t *testing.T) {
	c := New()
	done := c.StartSection("table1")
	done()
	var merged Snapshot
	if err := merged.Merge(c.Snapshot(), "w1"); err != nil {
		t.Fatal(err)
	}
	// Re-merging an already-merged snapshot nests the namespace.
	var outer Snapshot
	if err := outer.Merge(merged, "siteA"); err != nil {
		t.Fatal(err)
	}
	if len(outer.Sections) != 1 || outer.Sections[0].Name != "siteA/w1/table1" {
		t.Fatalf("sections = %+v, want one named siteA/w1/table1", outer.Sections)
	}
}

func TestSnapshotMergeBucketMismatch(t *testing.T) {
	var merged Snapshot
	a := shardSnapshot(t, "classify", 3, outcome.Masked)
	if err := merged.Merge(a, "w1"); err != nil {
		t.Fatal(err)
	}
	b := a
	b.RunLatency.Buckets = append([]BucketSnapshot(nil), a.RunLatency.Buckets...)
	b.RunLatency.Buckets[0].LE = "42"
	if err := merged.Merge(b, "w2"); err == nil {
		t.Fatal("Merge accepted mismatched histogram bounds")
	}
}

func TestCollectorAbsorb(t *testing.T) {
	remote := shardSnapshot(t, "exhaustive", 8, outcome.Crash)
	c := New()
	// Local activity first, so absorption provably adds rather than
	// replaces.
	rec := c.StartCampaign("exhaustive", 2, 1)
	rec.Run(0, outcome.Masked, time.Microsecond)
	rec.Run(0, outcome.Masked, time.Microsecond)
	rec.End()
	if err := c.Absorb(remote); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Experiments != 10 {
		t.Errorf("Experiments = %d, want 10 (2 local + 8 absorbed)", s.Experiments)
	}
	if s.Campaigns != 2 {
		t.Errorf("Campaigns = %d, want 2", s.Campaigns)
	}
	if s.Outcomes.Crash != 8 || s.Outcomes.Masked != 2 {
		t.Errorf("Outcomes = %+v, want 8 crash + 2 masked", s.Outcomes)
	}
	if s.RunLatency.Count != 10 {
		t.Errorf("RunLatency.Count = %d, want 10", s.RunLatency.Count)
	}
	wantSum := remote.RunLatency.SumSeconds + 2e-6
	if math.Abs(s.RunLatency.SumSeconds-wantSum) > 1e-9 {
		t.Errorf("RunLatency.SumSeconds = %g, want %g", s.RunLatency.SumSeconds, wantSum)
	}
	ph := s.Phases["exhaustive"]
	if ph.Experiments != 10 || ph.Outcomes.Crash != 8 {
		t.Errorf("phase = %+v, want 10 experiments with 8 crashes", ph)
	}
}
