// Package telemetry is the campaign observability layer: a lock-cheap
// metrics collector the execution engine feeds directly. Where the
// Observer path (campaign.Event) streams coarse per-batch progress for
// live rendering, the Collector accumulates the accounting needed to
// answer "where does campaign time go, what is the outcome mix per
// phase, and how well are the workers utilized": per-run latency
// histograms, outcome counters (masked / SDC / crash / trace-mismatch),
// batch queue wait, per-worker experiment counts, and wall-clock per
// campaign. Everything aggregates into a Snapshot exportable as JSON or
// Prometheus-style text exposition (snapshot.go).
//
// The hot path — one Run call per fault-injection experiment — is five
// atomic adds striped by worker onto cacheline-padded shards (no locks,
// no allocation, no cachelines shared between workers), so a collector
// attached to a campaign costs tens of nanoseconds per program
// execution. Global totals are never maintained on the write path;
// snapshots sum the shards. The collector mutex guards only
// per-campaign and per-section bookkeeping, entered once per campaign,
// not per experiment.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ftb/internal/outcome"
)

// maxWorkers bounds the per-worker counter table. It mirrors
// campaign.MaxWorkers (this package cannot import campaign — the
// dependency points the other way); workers at or beyond the bound fold
// into the last slot rather than being dropped.
const maxWorkers = 1024

// stripes is the sharding degree of the hot-path counters. Every
// per-experiment counter is split into stripes cacheline-padded shards
// indexed by worker, so concurrent workers increment disjoint cachelines
// instead of bouncing one shared line between cores — on sub-microsecond
// experiments, that bouncing (not the arithmetic) is the entire
// collector cost. Readers sum the shards. 16 covers typical worker
// counts; beyond 16 workers stripes are shared round-robin, which only
// reintroduces contention gradually.
const (
	stripes    = 16
	stripeMask = stripes - 1
)

// paddedCounter is an atomic counter alone on its cacheline.
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// add increments the counter by n.
func (c *paddedCounter) add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *paddedCounter) Value() int64 { return c.v.Load() }

// stripedCounter is a monotonically increasing counter sharded across
// cachelines. Writers pick a stripe (worker index); Value sums.
type stripedCounter struct {
	shards [stripes]paddedCounter
}

// add increments the counter by n on the given stripe.
func (c *stripedCounter) add(stripe int, n int64) {
	c.shards[stripe&stripeMask].v.Add(n)
}

// Value returns the current total across stripes.
func (c *stripedCounter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. campaigns in flight).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// run latency and batch queue wait: exponential from 1µs to 10s, which
// spans everything from a crash that aborts at the faulting store to a
// paper-scale masked run. Fixed buckets keep Observe allocation-free and
// mergeable.
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Buckets are set at
// construction; an observation is a binary search plus three atomic adds
// on a per-stripe shard, safe for concurrent use and contention-free
// when callers supply distinct stripes (the engine passes its worker
// index). Readers merge the shards.
type Histogram struct {
	bounds []float64   // ascending upper bounds, in seconds
	shards []histShard // stripes shards
}

// histShard is one stripe of a histogram. The tail padding keeps
// adjacent shards' sum fields off a shared cacheline; each shard's
// counts are a separate allocation. There is no observation counter —
// the count is the sum of the buckets, computed at read time, which
// keeps the write path at two atomic adds.
type histShard struct {
	counts []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Int64   // total observed time, nanoseconds
	_      [96]byte
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). With no bounds it uses DefaultLatencyBuckets.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: bounds,
		shards: make([]histShard, stripes),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// observe records one duration on the given stripe.
func (h *Histogram) observe(stripe int, d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s
	sh := &h.shards[stripe&stripeMask]
	sh.counts[i].Add(1)
	sh.sum.Add(d.Nanoseconds())
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.observe(0, d) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.shards {
		for j := range h.shards[i].counts {
			total += h.shards[i].counts[j].Load()
		}
	}
	return total
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	var total int64
	for i := range h.shards {
		total += h.shards[i].sum.Load()
	}
	return time.Duration(total)
}

// phaseStats aggregates one campaign phase ("exhaustive", "classify",
// "propagate"): the outcome mix and cost of that stage of the pipeline.
// experiments and outcomes sit on the per-run hot path, so they stripe.
type phaseStats struct {
	campaigns   Counter
	experiments stripedCounter
	outcomes    [outcome.NumKinds]stripedCounter
	traced      stripedCounter
	mismatches  Counter
	wallNanos   Counter
	// Checkpointed-replay accounting (campaigns run with Replay enabled).
	// Every prepared experiment is charged to exactly one restore tier:
	// a first-tier boundary-snapshot hit, a second-tier per-site-snapshot
	// hit, a rebuild seeded from a pooled golden boundary snapshot, or a
	// golden-prefix rebuild (miss). deltaRestores counts head restores
	// served by the kernel's dirty-interval delta path; convergeExits
	// counts runs cut short by a proven reconvergence, with the suffix
	// stores they skipped in convergeStores. storesSkipped totals the
	// prefix stores replay avoided re-executing. All of these ride the
	// per-experiment hot path, so they stripe like the outcome counters.
	snapTier1      stripedCounter
	snapTier2      stripedCounter
	snapPool       stripedCounter
	snapMisses     stripedCounter
	storesSkipped  stripedCounter
	deltaRestores  stripedCounter
	convergeExits  stripedCounter
	convergeStores stripedCounter
}

// storeStats aggregates ground-truth-store activity (internal/store):
// how much a process appended, how much it read back, and what
// compaction reclaimed. Store operations are batch-granular — one append
// per checkpoint batch or shard lease, one scan per materialization —
// so plain atomic counters suffice; nothing here rides the
// per-experiment hot path.
type storeStats struct {
	appends           Counter
	recordsAppended   Counter
	lookups           Counter
	scans             Counter
	recordsRead       Counter
	compactions       Counter
	segmentsCompacted Counter
	bytesReclaimed    Counter
}

// sectionStats aggregates one named harness section (e.g. "table1"):
// wall-clock plus the campaign and experiment counts attributed to it.
type sectionStats struct {
	spans       Counter
	campaigns   Counter
	experiments Counter
	wallNanos   Counter
}

// Collector accumulates campaign metrics. The zero value is not usable;
// construct with New. A single Collector may serve many campaigns, from
// many goroutines, concurrently.
// Global experiment, outcome, and mismatch totals are not stored: the
// experiment total is the sum of the per-worker counters and the
// outcome/mismatch totals are the sums over phases, all computed at
// read time. Every counter the hot path touches is written exactly once
// per experiment.
type Collector struct {
	campaigns Counter
	wallNanos Counter // summed campaign wall-clock

	runLatency *Histogram
	queueWait  *Histogram

	perWorker [maxWorkers]paddedCounter

	activeCampaigns Gauge
	activeWorkers   Gauge

	store storeStats

	mu           sync.Mutex
	phases       map[string]*phaseStats
	sections     map[string]*sectionStats
	sectionOrder []string
}

// New builds an empty collector with the default latency buckets.
func New() *Collector {
	return &Collector{
		runLatency: NewHistogram(),
		queueWait:  NewHistogram(),
		phases:     make(map[string]*phaseStats),
		sections:   make(map[string]*sectionStats),
	}
}

// experimentsTotal sums the per-worker counters — the collector-wide
// experiment count. Every Run lands in exactly one per-worker slot.
func (c *Collector) experimentsTotal() int64 {
	var total int64
	for i := range c.perWorker {
		total += c.perWorker[i].Value()
	}
	return total
}

// phase returns (creating if needed) the named phase's aggregate.
func (c *Collector) phase(name string) *phaseStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph, ok := c.phases[name]
	if !ok {
		ph = &phaseStats{}
		c.phases[name] = ph
	}
	return ph
}

// StartCampaign opens a per-campaign recorder. The engine calls it once
// per campaign and feeds the recorder from its workers; End closes the
// campaign and charges its wall-clock.
func (c *Collector) StartCampaign(phase string, total, workers int) *CampaignRecorder {
	ph := c.phase(phase)
	c.campaigns.Inc()
	ph.campaigns.Inc()
	c.activeCampaigns.Add(1)
	return &CampaignRecorder{c: c, ph: ph, start: time.Now()}
}

// CampaignRecorder scopes one campaign's measurements to its phase. All
// methods are safe for concurrent use by the campaign's workers; only
// End must be called exactly once, after the workers have exited.
type CampaignRecorder struct {
	c     *Collector
	ph    *phaseStats
	start time.Time
	ended atomic.Bool
}

// WorkerStart marks one engine worker as running.
func (r *CampaignRecorder) WorkerStart() { r.c.activeWorkers.Add(1) }

// WorkerStop marks one engine worker as exited.
func (r *CampaignRecorder) WorkerStop() { r.c.activeWorkers.Add(-1) }

// Run records one completed experiment: its classified outcome, the
// worker that executed it, and its latency. This is the hot path —
// five atomic adds on worker-striped cachelines plus the histogram
// bucket search, nothing shared between concurrent workers.
func (r *CampaignRecorder) Run(worker int, kind outcome.Kind, d time.Duration) {
	c := r.c
	stripe := worker & stripeMask
	c.runLatency.observe(stripe, d)
	w := worker
	if w < 0 {
		w = 0
	} else if w >= maxWorkers {
		w = maxWorkers - 1
	}
	c.perWorker[w].add(1)
	r.ph.experiments.add(stripe, 1)
	if int(kind) < outcome.NumKinds {
		r.ph.outcomes[kind].add(stripe, 1)
	}
}

// Traced records that the given worker's last completed experiment also
// recorded a propagation trajectory (the campaign ran with a tracer
// attached). Like Run, it is a single striped atomic add.
func (r *CampaignRecorder) Traced(worker int) {
	r.ph.traced.add(worker&stripeMask, 1)
}

// Wait records scheduling overhead — time the given worker spent
// claiming work off the batch queue or merging progress, rather than
// executing experiments. The engine reports it twice per batch (claim
// and merge).
func (r *CampaignRecorder) Wait(worker int, d time.Duration) {
	r.c.queueWait.observe(worker, d)
}

// Mismatch records a trace-mismatch abort (a factory that built a
// different, or non-data-oblivious, program).
func (r *CampaignRecorder) Mismatch() { r.ph.mismatches.Inc() }

// RestoreTier1 records that the given worker served an experiment's
// prefix from its held boundary snapshot (first-tier hit).
func (r *CampaignRecorder) RestoreTier1(worker int) {
	r.ph.snapTier1.add(worker&stripeMask, 1)
}

// RestoreTier2 records that the given worker served an experiment's
// prefix from its held per-site snapshot (second-tier hit: the restore
// covered the boundary→site gap too).
func (r *CampaignRecorder) RestoreTier2(worker int) {
	r.ph.snapTier2.add(worker&stripeMask, 1)
}

// RestorePool records that the given worker rebuilt its head snapshot
// seeded from a pooled golden boundary snapshot instead of re-running
// the golden prefix from the program entry.
func (r *CampaignRecorder) RestorePool(worker int) {
	r.ph.snapPool.add(worker&stripeMask, 1)
}

// RestoreMiss records that the given worker had to (re)build its kernel
// snapshot by running or extending the golden prefix before injecting.
func (r *CampaignRecorder) RestoreMiss(worker int) {
	r.ph.snapMisses.add(worker&stripeMask, 1)
}

// DeltaRestore records that a head-snapshot restore went through the
// kernel's dirty-interval delta path instead of a full state copy.
func (r *CampaignRecorder) DeltaRestore(worker int) {
	r.ph.deltaRestores.add(worker&stripeMask, 1)
}

// Converge records one run cut short by a proven reconvergence onto the
// golden trace, skipping the given number of suffix stores.
func (r *CampaignRecorder) Converge(worker int, skipped int64) {
	stripe := worker & stripeMask
	r.ph.convergeExits.add(stripe, 1)
	if skipped > 0 {
		r.ph.convergeStores.add(stripe, skipped)
	}
}

// StoresSkipped records how many prefix stores one experiment avoided
// re-executing by resuming from a snapshot instead of running from the
// program entry.
func (r *CampaignRecorder) StoresSkipped(worker int, n int64) {
	if n > 0 {
		r.ph.storesSkipped.add(worker&stripeMask, n)
	}
}

// End closes the campaign, charging its wall-clock to the collector and
// the phase. Extra calls are no-ops, so it is defer-safe.
func (r *CampaignRecorder) End() {
	if r.ended.Swap(true) {
		return
	}
	wall := time.Since(r.start).Nanoseconds()
	r.c.wallNanos.Add(wall)
	r.ph.wallNanos.Add(wall)
	r.c.activeCampaigns.Add(-1)
}

// StoreAppend records one durable outcome-batch append of the given
// record count into the ground-truth store.
func (c *Collector) StoreAppend(records int) {
	c.store.appends.Inc()
	c.store.recordsAppended.Add(int64(records))
}

// StoreLookup records one point lookup that read recordsRead records.
func (c *Collector) StoreLookup(recordsRead int64) {
	c.store.lookups.Inc()
	c.store.recordsRead.Add(recordsRead)
}

// StoreScan records one range scan (or materialization) that read
// recordsRead records.
func (c *Collector) StoreScan(recordsRead int64) {
	c.store.scans.Inc()
	c.store.recordsRead.Add(recordsRead)
}

// StoreCompaction records one compaction that folded segments live
// segments away and reclaimed bytesReclaimed bytes.
func (c *Collector) StoreCompaction(segments int, bytesReclaimed int64) {
	c.store.compactions.Inc()
	c.store.segmentsCompacted.Add(int64(segments))
	if bytesReclaimed > 0 {
		c.store.bytesReclaimed.Add(bytesReclaimed)
	}
}

// StartSection opens a named wall-clock span (e.g. one experiment table
// of the harness) and returns the function that closes it. Campaign and
// experiment counts recorded between the two calls are attributed to the
// section, so a snapshot can answer "where did the harness time go".
// Sections with the same name merge; nested or overlapping sections
// double-charge the shared work, so keep them disjoint.
func (c *Collector) StartSection(name string) func() {
	c.mu.Lock()
	sec, ok := c.sections[name]
	if !ok {
		sec = &sectionStats{}
		c.sections[name] = sec
		c.sectionOrder = append(c.sectionOrder, name)
	}
	c.mu.Unlock()
	start := time.Now()
	campaigns0 := c.campaigns.Value()
	experiments0 := c.experimentsTotal()
	var once sync.Once
	return func() {
		once.Do(func() {
			sec.spans.Inc()
			sec.campaigns.Add(c.campaigns.Value() - campaigns0)
			sec.experiments.Add(c.experimentsTotal() - experiments0)
			sec.wallNanos.Add(time.Since(start).Nanoseconds())
		})
	}
}
