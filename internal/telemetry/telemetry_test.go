package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"ftb/internal/outcome"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1e-6, 1e-3, 1)
	h.Observe(500 * time.Nanosecond)  // <= 1µs
	h.Observe(time.Microsecond)       // boundary: le includes the bound
	h.Observe(50 * time.Microsecond)  // <= 1ms
	h.Observe(100 * time.Millisecond) // <= 1s
	h.Observe(2 * time.Second)        // overflow
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCum := []int64{2, 3, 4, 5}
	wantLE := []string{"1e-06", "0.001", "1", "+Inf"}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] || b.LE != wantLE[i] {
			t.Errorf("bucket %d = {%s, %d}, want {%s, %d}", i, b.LE, b.Count, wantLE[i], wantCum[i])
		}
	}
	wantSum := (500*time.Nanosecond + time.Microsecond + 50*time.Microsecond +
		100*time.Millisecond + 2*time.Second).Seconds()
	if s.SumSeconds != wantSum {
		t.Errorf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram()
	if len(h.bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("default bounds %d, want %d", len(h.bounds), len(DefaultLatencyBuckets))
	}
	h.Observe(time.Minute) // beyond the 10s top bound
	s := h.snapshot()
	if got := s.Buckets[len(s.Buckets)-1]; got.LE != "+Inf" || got.Count != 1 {
		t.Errorf("overflow bucket = %+v", got)
	}
	if s.Buckets[0].Count != 0 {
		t.Errorf("first bucket nonempty: %+v", s.Buckets[0])
	}
}

// TestCollectorConcurrent hammers one campaign recorder from 8 worker
// goroutines (mirroring an 8-worker engine pool) and checks every
// aggregate. Run under -race (the Makefile race target includes this
// package) this is the collector's thread-safety proof.
func TestCollectorConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 1000
	c := New()
	rec := c.StartCampaign("classify", workers*perWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec.WorkerStart()
			defer rec.WorkerStop()
			for i := 0; i < perWorker; i++ {
				kind := outcome.Kind(i % outcome.NumKinds)
				rec.Run(w, kind, time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					rec.Wait(w, time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()
	rec.End()
	rec.End() // idempotent

	s := c.Snapshot()
	total := int64(workers * perWorker)
	if s.Experiments != total {
		t.Errorf("experiments = %d, want %d", s.Experiments, total)
	}
	if s.Campaigns != 1 {
		t.Errorf("campaigns = %d, want 1", s.Campaigns)
	}
	if got := s.Outcomes.Masked + s.Outcomes.SDC + s.Outcomes.Crash; got != total {
		t.Errorf("outcome sum = %d, want %d", got, total)
	}
	// Each worker contributed the same outcome mix: 1000 iterations mod 3
	// kinds gives 334 masked and 333 each of sdc/crash per worker.
	wantPerKind := int64(workers * (perWorker / outcome.NumKinds))
	if s.Outcomes.SDC != wantPerKind || s.Outcomes.Crash != wantPerKind {
		t.Errorf("outcomes = %+v, want %d sdc and crash", s.Outcomes, wantPerKind)
	}
	if len(s.Workers) != workers {
		t.Fatalf("worker rows = %d, want %d", len(s.Workers), workers)
	}
	for _, ws := range s.Workers {
		if ws.Experiments != perWorker {
			t.Errorf("worker %d executed %d, want %d", ws.Worker, ws.Experiments, perWorker)
		}
	}
	if s.RunLatency.Count != total {
		t.Errorf("latency count = %d, want %d", s.RunLatency.Count, total)
	}
	if s.QueueWait.Count != int64(workers*perWorker/100) {
		t.Errorf("queue wait count = %d, want %d", s.QueueWait.Count, workers*perWorker/100)
	}
	last := s.RunLatency.Buckets[len(s.RunLatency.Buckets)-1]
	if last.Count != total {
		t.Errorf("cumulative +Inf bucket = %d, want %d", last.Count, total)
	}
	if s.Gauges["active_campaigns"] != 0 || s.Gauges["active_workers"] != 0 {
		t.Errorf("gauges did not return to zero: %v", s.Gauges)
	}
	ph, ok := s.Phases["classify"]
	if !ok {
		t.Fatal("classify phase missing")
	}
	if ph.Experiments != total || ph.Campaigns != 1 {
		t.Errorf("phase = %+v", ph)
	}
	if ph.Outcomes != s.Outcomes {
		t.Errorf("phase outcomes %+v != overall %+v", ph.Outcomes, s.Outcomes)
	}
	if s.WallSeconds <= 0 {
		t.Errorf("wall = %g, want > 0", s.WallSeconds)
	}
}

func TestCollectorPhasesSeparate(t *testing.T) {
	c := New()
	r1 := c.StartCampaign("classify", 1, 1)
	r1.Run(0, outcome.Masked, time.Microsecond)
	r1.End()
	r2 := c.StartCampaign("propagate", 2, 1)
	r2.Run(0, outcome.SDC, time.Microsecond)
	r2.Run(0, outcome.SDC, time.Microsecond)
	r2.Mismatch()
	r2.End()
	s := c.Snapshot()
	if s.Campaigns != 2 || s.Experiments != 3 {
		t.Fatalf("campaigns=%d experiments=%d", s.Campaigns, s.Experiments)
	}
	if s.Phases["classify"].Outcomes.Masked != 1 || s.Phases["classify"].Experiments != 1 {
		t.Errorf("classify phase = %+v", s.Phases["classify"])
	}
	if p := s.Phases["propagate"]; p.Outcomes.SDC != 2 || p.Outcomes.Mismatch != 1 {
		t.Errorf("propagate phase = %+v", p)
	}
	if s.Outcomes.Mismatch != 1 {
		t.Errorf("mismatch = %d, want 1", s.Outcomes.Mismatch)
	}
}

func TestSections(t *testing.T) {
	c := New()
	end := c.StartSection("table1")
	rec := c.StartCampaign("exhaustive", 2, 1)
	rec.Run(0, outcome.Masked, time.Microsecond)
	rec.Run(0, outcome.Crash, time.Microsecond)
	rec.End()
	end()
	end() // double-close is a no-op

	// Same name merges; campaign counts are attributed per span.
	end2 := c.StartSection("table1")
	end2()

	s := c.Snapshot()
	if len(s.Sections) != 1 {
		t.Fatalf("sections = %d, want 1 (merged)", len(s.Sections))
	}
	sec := s.Sections[0]
	if sec.Name != "table1" || sec.Spans != 2 || sec.Campaigns != 1 || sec.Experiments != 2 {
		t.Errorf("section = %+v", sec)
	}
	if sec.WallSeconds <= 0 {
		t.Errorf("section wall = %g", sec.WallSeconds)
	}
}

func TestSectionOrderStable(t *testing.T) {
	c := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		c.StartSection(name)()
	}
	s := c.Snapshot()
	var got []string
	for _, sec := range s.Sections {
		got = append(got, sec.Name)
	}
	want := []string{"zeta", "alpha", "mid"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("section order = %v, want %v (first-opened order)", got, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := New()
	rec := c.StartCampaign("exhaustive", 1, 1)
	rec.Run(0, outcome.SDC, 3*time.Millisecond)
	rec.End()
	var buf strings.Builder
	if err := c.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if back.Experiments != 1 || back.Outcomes.SDC != 1 {
		t.Errorf("round-tripped snapshot = %+v", back)
	}
	if back.Phases["exhaustive"].Experiments != 1 {
		t.Errorf("phases lost in round trip: %+v", back.Phases)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := New()
	rec := c.StartCampaign("exhaustive", 2, 2)
	rec.Run(0, outcome.Masked, time.Microsecond)
	rec.Run(1, outcome.Crash, time.Second)
	rec.End()
	c.StartSection("table1")()
	var buf strings.Builder
	if err := c.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ftb_experiments_total counter",
		"ftb_experiments_total 2",
		`ftb_outcomes_total{outcome="masked"} 1`,
		`ftb_outcomes_total{outcome="crash"} 1`,
		`ftb_outcomes_total{outcome="mismatch"} 0`,
		"# TYPE ftb_run_latency_seconds histogram",
		`ftb_run_latency_seconds_bucket{le="+Inf"} 2`,
		"ftb_run_latency_seconds_count 2",
		`ftb_worker_experiments_total{worker="0"} 1`,
		`ftb_worker_experiments_total{worker="1"} 1`,
		`ftb_phase_experiments_total{phase="exhaustive"} 2`,
		`ftb_section_wall_seconds_total{section="table1"}`,
		"# TYPE ftb_active_campaigns gauge",
		"ftb_active_campaigns 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Exposition must end with a newline and contain no tabs.
	if !strings.HasSuffix(out, "\n") || strings.Contains(out, "\t") {
		t.Error("malformed exposition body")
	}
}

func TestWorkerIndexClamped(t *testing.T) {
	c := New()
	rec := c.StartCampaign("classify", 2, 1)
	rec.Run(-5, outcome.Masked, time.Microsecond)
	rec.Run(maxWorkers+10, outcome.Masked, time.Microsecond)
	rec.End()
	s := c.Snapshot()
	if s.Experiments != 2 {
		t.Fatalf("experiments = %d", s.Experiments)
	}
	var sum int64
	for _, w := range s.Workers {
		sum += w.Experiments
	}
	if sum != 2 {
		t.Errorf("clamped runs lost: per-worker sum = %d, want 2", sum)
	}
}
