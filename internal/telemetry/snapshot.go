package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ftb/internal/outcome"
)

// Snapshot is a point-in-time copy of a Collector's aggregates, shaped
// for export: json.Marshal-able directly (WriteJSON) and renderable as
// Prometheus-style text exposition (WritePrometheus). Snapshots are
// plain data — taking one does not pause or reset the collector.
//
// A snapshot taken while campaigns are running is per-metric consistent
// (every number is a real counter reading) but not cross-metric atomic:
// e.g. Experiments may be one ahead of the outcome total. Snapshot after
// the campaign entry point returns for exact accounting.
type Snapshot struct {
	Campaigns   int64 `json:"campaigns"`
	Experiments int64 `json:"experiments"`
	// Trajectories counts experiments that also recorded a propagation
	// trajectory (campaigns run with a tracer attached).
	Trajectories int64                    `json:"trajectories"`
	Outcomes     OutcomeCounts            `json:"outcomes"`
	Replay       ReplayCounts             `json:"replay"`
	Store        StoreCounts              `json:"store"`
	WallSeconds  float64                  `json:"wall_seconds"`
	RunLatency   HistogramSnapshot        `json:"run_latency"`
	QueueWait    HistogramSnapshot        `json:"queue_wait"`
	Workers      []WorkerSnapshot         `json:"workers"`
	Gauges       map[string]int64         `json:"gauges"`
	Phases       map[string]PhaseSnapshot `json:"phases"`
	Sections     []SectionSnapshot        `json:"sections,omitempty"`
}

// ReplayCounts is the checkpointed-replay accounting of campaigns run
// with Replay enabled. Every prepared experiment lands in exactly one of
// the four restore-attribution buckets: a first-tier boundary-snapshot
// hit, a second-tier per-site-snapshot hit, a rebuild seeded from the
// pooled golden boundary snapshots, or a golden-prefix rebuild (miss).
// SnapshotHits and SnapshotMisses keep the coarse split (hits =
// tier 1 + tier 2, misses = pool + prefix misses). DeltaRestores counts
// head restores served by the kernel's dirty-interval delta path;
// ConvergeExits counts runs cut short by a proven reconvergence onto
// the golden trace, with the suffix stores they skipped in
// StoresConvergeSkipped. All zero for campaigns run without replay.
type ReplayCounts struct {
	SnapshotHits          int64 `json:"snapshot_hits"`
	SnapshotMisses        int64 `json:"snapshot_misses"`
	Tier1Hits             int64 `json:"tier1_hits"`
	Tier2Hits             int64 `json:"tier2_hits"`
	PoolHits              int64 `json:"pool_hits"`
	PrefixMisses          int64 `json:"prefix_misses"`
	DeltaRestores         int64 `json:"delta_restores"`
	ConvergeExits         int64 `json:"converge_exits"`
	StoresSkipped         int64 `json:"stores_skipped"`
	StoresConvergeSkipped int64 `json:"stores_converge_skipped"`
}

// StoreCounts is the ground-truth-store accounting (internal/store):
// durable batch appends and the records they carried, point lookups and
// range scans with the records they read, and what compaction folded
// away. All zero for processes that never touch a store.
type StoreCounts struct {
	Appends           int64 `json:"appends"`
	RecordsAppended   int64 `json:"records_appended"`
	Lookups           int64 `json:"lookups"`
	Scans             int64 `json:"scans"`
	RecordsRead       int64 `json:"records_read"`
	Compactions       int64 `json:"compactions"`
	SegmentsCompacted int64 `json:"segments_compacted"`
	BytesReclaimed    int64 `json:"bytes_reclaimed"`
}

// OutcomeCounts is the classified-outcome tally, plus trace-mismatch
// aborts (which are campaign failures, not a fourth classification).
type OutcomeCounts struct {
	Masked   int64 `json:"masked"`
	SDC      int64 `json:"sdc"`
	Crash    int64 `json:"crash"`
	Mismatch int64 `json:"mismatch"`
}

// HistogramSnapshot is a cumulative-bucket histogram copy. Buckets carry
// Prometheus "le" semantics: Count is the number of observations at or
// below LE, and the final bucket ("+Inf") equals the total Count.
type HistogramSnapshot struct {
	Count      int64            `json:"count"`
	SumSeconds float64          `json:"sum_seconds"`
	Buckets    []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket. LE is the decimal
// upper bound, "+Inf" for the overflow bucket (a string so the snapshot
// stays representable in JSON).
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// WorkerSnapshot is one engine worker's experiment count. Workers that
// executed nothing are omitted. Shard is empty for a locally collected
// snapshot; merged cluster snapshots namespace each remote worker with
// its shard label (see Snapshot.Merge), so worker 0 of shard "w1" and
// worker 0 of shard "w2" stay distinct rows.
type WorkerSnapshot struct {
	Worker      int    `json:"worker"`
	Shard       string `json:"shard,omitempty"`
	Experiments int64  `json:"experiments"`
}

// PhaseSnapshot is one campaign phase's aggregate.
type PhaseSnapshot struct {
	Campaigns    int64         `json:"campaigns"`
	Experiments  int64         `json:"experiments"`
	Trajectories int64         `json:"trajectories"`
	Outcomes     OutcomeCounts `json:"outcomes"`
	Replay       ReplayCounts  `json:"replay"`
	WallSeconds  float64       `json:"wall_seconds"`
}

// SectionSnapshot is one named harness span, in first-opened order.
type SectionSnapshot struct {
	Name        string  `json:"name"`
	Spans       int64   `json:"spans"`
	Campaigns   int64   `json:"campaigns"`
	Experiments int64   `json:"experiments"`
	WallSeconds float64 `json:"wall_seconds"`
}

func nanosToSeconds(n int64) float64 { return float64(n) / 1e9 }

// add folds another ReplayCounts into r (snapshot aggregation, cluster
// merges).
func (r *ReplayCounts) add(o ReplayCounts) {
	r.SnapshotHits += o.SnapshotHits
	r.SnapshotMisses += o.SnapshotMisses
	r.Tier1Hits += o.Tier1Hits
	r.Tier2Hits += o.Tier2Hits
	r.PoolHits += o.PoolHits
	r.PrefixMisses += o.PrefixMisses
	r.DeltaRestores += o.DeltaRestores
	r.ConvergeExits += o.ConvergeExits
	r.StoresSkipped += o.StoresSkipped
	r.StoresConvergeSkipped += o.StoresConvergeSkipped
}

// replayCounts assembles a phase's replay accounting; the coarse
// hit/miss split is derived from the restore-attribution buckets.
func replayCounts(ph *phaseStats) ReplayCounts {
	rc := ReplayCounts{
		Tier1Hits:             ph.snapTier1.Value(),
		Tier2Hits:             ph.snapTier2.Value(),
		PoolHits:              ph.snapPool.Value(),
		PrefixMisses:          ph.snapMisses.Value(),
		DeltaRestores:         ph.deltaRestores.Value(),
		ConvergeExits:         ph.convergeExits.Value(),
		StoresSkipped:         ph.storesSkipped.Value(),
		StoresConvergeSkipped: ph.convergeStores.Value(),
	}
	rc.SnapshotHits = rc.Tier1Hits + rc.Tier2Hits
	rc.SnapshotMisses = rc.PoolHits + rc.PrefixMisses
	return rc
}

func outcomeCounts(o *[outcome.NumKinds]stripedCounter, mismatches int64) OutcomeCounts {
	return OutcomeCounts{
		Masked:   o[outcome.Masked].Value(),
		SDC:      o[outcome.SDC].Value(),
		Crash:    o[outcome.Crash].Value(),
		Mismatch: mismatches,
	}
}

// snapshot merges a histogram's stripes into cumulative-bucket form.
func (h *Histogram) snapshot() HistogramSnapshot {
	nb := len(h.bounds) + 1
	s := HistogramSnapshot{
		Count:      h.Count(),
		SumSeconds: nanosToSeconds(h.Sum().Nanoseconds()),
		Buckets:    make([]BucketSnapshot, 0, nb),
	}
	var cum int64
	for i := 0; i < nb; i++ {
		for sh := range h.shards {
			cum += h.shards[sh].counts[i].Load()
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
	}
	return s
}

// Snapshot copies the collector's current aggregates. The global
// experiment count sums the per-worker counters and the global outcome
// mix sums the phases — the hot path maintains only the sharded forms.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Campaigns:   c.campaigns.Value(),
		Experiments: c.experimentsTotal(),
		WallSeconds: nanosToSeconds(c.wallNanos.Value()),
		RunLatency:  c.runLatency.snapshot(),
		QueueWait:   c.queueWait.snapshot(),
		Store: StoreCounts{
			Appends:           c.store.appends.Value(),
			RecordsAppended:   c.store.recordsAppended.Value(),
			Lookups:           c.store.lookups.Value(),
			Scans:             c.store.scans.Value(),
			RecordsRead:       c.store.recordsRead.Value(),
			Compactions:       c.store.compactions.Value(),
			SegmentsCompacted: c.store.segmentsCompacted.Value(),
			BytesReclaimed:    c.store.bytesReclaimed.Value(),
		},
		Gauges: map[string]int64{
			"active_campaigns": c.activeCampaigns.Value(),
			"active_workers":   c.activeWorkers.Value(),
		},
		Phases: make(map[string]PhaseSnapshot),
	}
	for w := range c.perWorker {
		if n := c.perWorker[w].Value(); n > 0 {
			s.Workers = append(s.Workers, WorkerSnapshot{Worker: w, Experiments: n})
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, ph := range c.phases {
		pc := outcomeCounts(&ph.outcomes, ph.mismatches.Value())
		s.Outcomes.Masked += pc.Masked
		s.Outcomes.SDC += pc.SDC
		s.Outcomes.Crash += pc.Crash
		s.Outcomes.Mismatch += pc.Mismatch
		ps := PhaseSnapshot{
			Campaigns:    ph.campaigns.Value(),
			Experiments:  ph.experiments.Value(),
			Trajectories: ph.traced.Value(),
			Outcomes:     pc,
			Replay:       replayCounts(ph),
			WallSeconds:  nanosToSeconds(ph.wallNanos.Value()),
		}
		s.Trajectories += ps.Trajectories
		s.Replay.add(ps.Replay)
		s.Phases[name] = ps
	}
	for _, name := range c.sectionOrder {
		sec := c.sections[name]
		s.Sections = append(s.Sections, SectionSnapshot{
			Name:        name,
			Spans:       sec.spans.Value(),
			Campaigns:   sec.campaigns.Value(),
			Experiments: sec.experiments.Value(),
			WallSeconds: nanosToSeconds(sec.wallNanos.Value()),
		})
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// promFloat renders a float the way Prometheus exposition expects.
func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// writeHistogramProm writes one histogram family in exposition format.
func writeHistogramProm(w io.Writer, name, help string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for _, b := range h.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, b.LE, b.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.SumSeconds), name, h.Count)
	return err
}

// WritePrometheus writes the snapshot as Prometheus-style text
// exposition (one scrape body), suitable for a node_exporter textfile or
// a pull endpoint. Series are emitted in a fixed order so the output is
// diffable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	counter := func(name, help string, v int64) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		return err
	}
	if err := counter("ftb_campaigns_total", "Fault-injection campaigns executed.", s.Campaigns); err != nil {
		return err
	}
	if err := counter("ftb_experiments_total", "Fault-injection experiments executed.", s.Experiments); err != nil {
		return err
	}
	if err := counter("ftb_trajectories_total", "Propagation trajectories recorded by traced experiments.", s.Trajectories); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "# HELP ftb_outcomes_total Experiment outcomes by classification.\n# TYPE ftb_outcomes_total counter\n"); err != nil {
		return err
	}
	for _, kv := range []struct {
		label string
		v     int64
	}{
		{"masked", s.Outcomes.Masked},
		{"sdc", s.Outcomes.SDC},
		{"crash", s.Outcomes.Crash},
		{"mismatch", s.Outcomes.Mismatch},
	} {
		if _, err := fmt.Fprintf(w, "ftb_outcomes_total{outcome=%q} %d\n", kv.label, kv.v); err != nil {
			return err
		}
	}
	if err := counter("ftb_replay_snapshot_hits_total", "Experiments whose prefix was served from a cached kernel snapshot.", s.Replay.SnapshotHits); err != nil {
		return err
	}
	if err := counter("ftb_replay_snapshot_misses_total", "Experiments that had to build or extend a kernel snapshot.", s.Replay.SnapshotMisses); err != nil {
		return err
	}
	if err := counter("ftb_replay_stores_skipped_total", "Prefix stores replay avoided re-executing.", s.Replay.StoresSkipped); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "# HELP ftb_replay_restores_total Prepared experiments by restore tier.\n# TYPE ftb_replay_restores_total counter\n"); err != nil {
		return err
	}
	for _, kv := range []struct {
		label string
		v     int64
	}{
		{"tier1", s.Replay.Tier1Hits},
		{"tier2", s.Replay.Tier2Hits},
		{"pool", s.Replay.PoolHits},
		{"miss", s.Replay.PrefixMisses},
	} {
		if _, err := fmt.Fprintf(w, "ftb_replay_restores_total{tier=%q} %d\n", kv.label, kv.v); err != nil {
			return err
		}
	}
	if err := counter("ftb_replay_delta_restores_total", "Head-snapshot restores served by the dirty-interval delta path.", s.Replay.DeltaRestores); err != nil {
		return err
	}
	if err := counter("ftb_replay_converge_exits_total", "Runs cut short by a proven reconvergence onto the golden trace.", s.Replay.ConvergeExits); err != nil {
		return err
	}
	if err := counter("ftb_replay_converge_stores_skipped_total", "Suffix stores skipped by reconvergence early-exits.", s.Replay.StoresConvergeSkipped); err != nil {
		return err
	}
	if err := counter("ftb_store_appends_total", "Durable outcome-batch appends into the ground-truth store.", s.Store.Appends); err != nil {
		return err
	}
	if err := counter("ftb_store_records_appended_total", "Outcome records appended into the ground-truth store.", s.Store.RecordsAppended); err != nil {
		return err
	}
	if err := counter("ftb_store_lookups_total", "Point lookups answered by the ground-truth store.", s.Store.Lookups); err != nil {
		return err
	}
	if err := counter("ftb_store_scans_total", "Range scans and materializations answered by the ground-truth store.", s.Store.Scans); err != nil {
		return err
	}
	if err := counter("ftb_store_records_read_total", "Records read by store lookups and scans.", s.Store.RecordsRead); err != nil {
		return err
	}
	if err := counter("ftb_store_compactions_total", "Ground-truth store compactions.", s.Store.Compactions); err != nil {
		return err
	}
	if err := counter("ftb_store_segments_compacted_total", "Segments folded away by store compactions.", s.Store.SegmentsCompacted); err != nil {
		return err
	}
	if err := counter("ftb_store_bytes_reclaimed_total", "Bytes reclaimed by store compactions.", s.Store.BytesReclaimed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP ftb_campaign_wall_seconds_total Summed campaign wall-clock time.\n# TYPE ftb_campaign_wall_seconds_total counter\nftb_campaign_wall_seconds_total %s\n", promFloat(s.WallSeconds)); err != nil {
		return err
	}
	if err := writeHistogramProm(w, "ftb_run_latency_seconds", "Per-experiment execution latency.", s.RunLatency); err != nil {
		return err
	}
	if err := writeHistogramProm(w, "ftb_queue_wait_seconds", "Per-batch scheduling overhead (claim + progress merge).", s.QueueWait); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "# HELP ftb_worker_experiments_total Experiments executed per engine worker.\n# TYPE ftb_worker_experiments_total counter\n"); err != nil {
		return err
	}
	for _, ws := range s.Workers {
		var err error
		if ws.Shard != "" {
			_, err = fmt.Fprintf(w, "ftb_worker_experiments_total{shard=%q,worker=\"%d\"} %d\n", ws.Shard, ws.Worker, ws.Experiments)
		} else {
			_, err = fmt.Fprintf(w, "ftb_worker_experiments_total{worker=\"%d\"} %d\n", ws.Worker, ws.Experiments)
		}
		if err != nil {
			return err
		}
	}
	phases := make([]string, 0, len(s.Phases))
	for name := range s.Phases {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	if _, err := fmt.Fprint(w, "# HELP ftb_phase_experiments_total Experiments executed per campaign phase.\n# TYPE ftb_phase_experiments_total counter\n"); err != nil {
		return err
	}
	for _, name := range phases {
		if _, err := fmt.Fprintf(w, "ftb_phase_experiments_total{phase=%q} %d\n", name, s.Phases[name].Experiments); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "# HELP ftb_phase_wall_seconds_total Campaign wall-clock per phase.\n# TYPE ftb_phase_wall_seconds_total counter\n"); err != nil {
		return err
	}
	for _, name := range phases {
		if _, err := fmt.Fprintf(w, "ftb_phase_wall_seconds_total{phase=%q} %s\n", name, promFloat(s.Phases[name].WallSeconds)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "# HELP ftb_section_wall_seconds_total Harness wall-clock per named section.\n# TYPE ftb_section_wall_seconds_total counter\n"); err != nil {
		return err
	}
	for _, sec := range s.Sections {
		if _, err := fmt.Fprintf(w, "ftb_section_wall_seconds_total{section=%q} %s\n", sec.Name, promFloat(sec.WallSeconds)); err != nil {
			return err
		}
	}
	gauges := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	sort.Strings(gauges)
	for _, name := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP ftb_%s Current %s.\n# TYPE ftb_%s gauge\nftb_%s %d\n",
			name, name, name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	return nil
}
