package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"ftb/internal/outcome"
)

// Merge folds another snapshot into s, the operation behind cluster
// campaigns: each remote worker returns the telemetry snapshot of its
// shard, and the coordinator merges them into one fleet-wide view.
//
//   - Scalar counters (campaigns, experiments, trajectories, outcomes,
//     wall-clock) and per-phase aggregates sum.
//   - Latency histograms sum bucket-wise, which requires both sides to
//     use the same bucket bounds (they do unless a Histogram was built
//     with custom bounds; a mismatch is an error, never a silent drop).
//   - Per-worker rows and sections are namespaced by shard: worker 0 of
//     two different shards must not collapse into one row, since the
//     whole point of the per-worker table is spotting utilization skew.
//   - Gauges sum, which for the active_* gauges of a completed shard
//     just adds zeros.
//
// Merge with an empty shard label keeps o's existing namespacing, so
// already-merged snapshots can be merged again (coordinator trees).
func (s *Snapshot) Merge(o Snapshot, shard string) error {
	if err := mergeHistogram(&s.RunLatency, o.RunLatency); err != nil {
		return fmt.Errorf("telemetry: merge run_latency: %w", err)
	}
	if err := mergeHistogram(&s.QueueWait, o.QueueWait); err != nil {
		return fmt.Errorf("telemetry: merge queue_wait: %w", err)
	}
	s.Campaigns += o.Campaigns
	s.Experiments += o.Experiments
	s.Trajectories += o.Trajectories
	s.Outcomes.Masked += o.Outcomes.Masked
	s.Outcomes.SDC += o.Outcomes.SDC
	s.Outcomes.Crash += o.Outcomes.Crash
	s.Outcomes.Mismatch += o.Outcomes.Mismatch
	s.Replay.add(o.Replay)
	s.Store.Appends += o.Store.Appends
	s.Store.RecordsAppended += o.Store.RecordsAppended
	s.Store.Lookups += o.Store.Lookups
	s.Store.Scans += o.Store.Scans
	s.Store.RecordsRead += o.Store.RecordsRead
	s.Store.Compactions += o.Store.Compactions
	s.Store.SegmentsCompacted += o.Store.SegmentsCompacted
	s.Store.BytesReclaimed += o.Store.BytesReclaimed
	s.WallSeconds += o.WallSeconds
	for _, w := range o.Workers {
		w.Shard = namespaced(shard, w.Shard)
		s.Workers = append(s.Workers, w)
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	for k, v := range o.Gauges {
		s.Gauges[k] += v
	}
	if len(o.Phases) > 0 && s.Phases == nil {
		s.Phases = make(map[string]PhaseSnapshot)
	}
	for name, op := range o.Phases {
		p := s.Phases[name]
		p.Campaigns += op.Campaigns
		p.Experiments += op.Experiments
		p.Trajectories += op.Trajectories
		p.Outcomes.Masked += op.Outcomes.Masked
		p.Outcomes.SDC += op.Outcomes.SDC
		p.Outcomes.Crash += op.Outcomes.Crash
		p.Outcomes.Mismatch += op.Outcomes.Mismatch
		p.Replay.add(op.Replay)
		p.WallSeconds += op.WallSeconds
		s.Phases[name] = p
	}
	for _, sec := range o.Sections {
		sec.Name = namespaced(shard, sec.Name)
		s.Sections = append(s.Sections, sec)
	}
	return nil
}

// namespaced prefixes name with the shard label, keeping names that are
// already namespaced (nested merges) intact under the outer shard.
func namespaced(shard, name string) string {
	switch {
	case shard == "":
		return name
	case name == "":
		return shard
	default:
		return shard + "/" + name
	}
}

// mergeHistogram adds o's buckets into dst bucket-wise. An empty dst
// (zero snapshot) adopts o's bucket layout.
func mergeHistogram(dst *HistogramSnapshot, o HistogramSnapshot) error {
	if len(o.Buckets) == 0 && o.Count == 0 {
		return nil
	}
	if len(dst.Buckets) == 0 && dst.Count == 0 {
		dst.Buckets = append([]BucketSnapshot(nil), o.Buckets...)
		dst.Count = o.Count
		dst.SumSeconds = o.SumSeconds
		return nil
	}
	if len(dst.Buckets) != len(o.Buckets) {
		return fmt.Errorf("bucket count %d != %d", len(dst.Buckets), len(o.Buckets))
	}
	for i := range dst.Buckets {
		if dst.Buckets[i].LE != o.Buckets[i].LE {
			return fmt.Errorf("bucket %d bound %q != %q", i, dst.Buckets[i].LE, o.Buckets[i].LE)
		}
		dst.Buckets[i].Count += o.Buckets[i].Count
	}
	dst.Count += o.Count
	dst.SumSeconds += o.SumSeconds
	return nil
}

// Absorb feeds a completed snapshot's aggregates into a live collector,
// as if the snapshot's campaigns had run locally. The cluster coordinator
// uses it so a collector attached through WithCollector — and therefore
// the -metrics export and the -serve /metrics endpoint — reflects the
// whole fleet, updating shard by shard as lease results arrive.
//
// Worker rows are folded by worker index (the shard namespacing of a
// merged snapshot cannot be represented in the collector's counter
// table); gauges, being instantaneous, are not absorbed.
func (c *Collector) Absorb(s Snapshot) error {
	if err := c.runLatency.absorb(s.RunLatency); err != nil {
		return fmt.Errorf("telemetry: absorb run_latency: %w", err)
	}
	if err := c.queueWait.absorb(s.QueueWait); err != nil {
		return fmt.Errorf("telemetry: absorb queue_wait: %w", err)
	}
	c.campaigns.Add(s.Campaigns)
	c.wallNanos.Add(int64(s.WallSeconds * 1e9))
	c.store.appends.Add(s.Store.Appends)
	c.store.recordsAppended.Add(s.Store.RecordsAppended)
	c.store.lookups.Add(s.Store.Lookups)
	c.store.scans.Add(s.Store.Scans)
	c.store.recordsRead.Add(s.Store.RecordsRead)
	c.store.compactions.Add(s.Store.Compactions)
	c.store.segmentsCompacted.Add(s.Store.SegmentsCompacted)
	c.store.bytesReclaimed.Add(s.Store.BytesReclaimed)
	for _, w := range s.Workers {
		i := w.Worker
		if i < 0 {
			i = 0
		} else if i >= maxWorkers {
			i = maxWorkers - 1
		}
		c.perWorker[i].add(w.Experiments)
	}
	for name, p := range s.Phases {
		ph := c.phase(name)
		ph.campaigns.Add(p.Campaigns)
		ph.experiments.add(0, p.Experiments)
		ph.outcomes[outcome.Masked].add(0, p.Outcomes.Masked)
		ph.outcomes[outcome.SDC].add(0, p.Outcomes.SDC)
		ph.outcomes[outcome.Crash].add(0, p.Outcomes.Crash)
		ph.traced.add(0, p.Trajectories)
		ph.mismatches.Add(p.Outcomes.Mismatch)
		// The coarse hit/miss split is derived from the tier buckets at
		// snapshot time, so only the fine-grained counters are absorbed.
		ph.snapTier1.add(0, p.Replay.Tier1Hits)
		ph.snapTier2.add(0, p.Replay.Tier2Hits)
		ph.snapPool.add(0, p.Replay.PoolHits)
		ph.snapMisses.add(0, p.Replay.PrefixMisses)
		ph.deltaRestores.add(0, p.Replay.DeltaRestores)
		ph.convergeExits.add(0, p.Replay.ConvergeExits)
		ph.storesSkipped.add(0, p.Replay.StoresSkipped)
		ph.convergeStores.add(0, p.Replay.StoresConvergeSkipped)
		ph.wallNanos.Add(int64(p.WallSeconds * 1e9))
	}
	for _, sec := range s.Sections {
		c.mu.Lock()
		st, ok := c.sections[sec.Name]
		if !ok {
			st = &sectionStats{}
			c.sections[sec.Name] = st
			c.sectionOrder = append(c.sectionOrder, sec.Name)
		}
		c.mu.Unlock()
		st.spans.Add(sec.Spans)
		st.campaigns.Add(sec.Campaigns)
		st.experiments.Add(sec.Experiments)
		st.wallNanos.Add(int64(sec.WallSeconds * 1e9))
	}
	return nil
}

// absorb adds a snapshot's cumulative buckets into the histogram's first
// shard. The snapshot's bounds must match the histogram's.
func (h *Histogram) absorb(s HistogramSnapshot) error {
	if len(s.Buckets) == 0 && s.Count == 0 {
		return nil
	}
	if len(s.Buckets) != len(h.bounds)+1 {
		return fmt.Errorf("bucket count %d != %d", len(s.Buckets), len(h.bounds)+1)
	}
	prev := int64(0)
	for i, b := range s.Buckets {
		if i < len(h.bounds) {
			le, err := strconv.ParseFloat(b.LE, 64)
			if err != nil || le != h.bounds[i] {
				return fmt.Errorf("bucket %d bound %q != %g", i, b.LE, h.bounds[i])
			}
		} else if b.LE != "+Inf" {
			return fmt.Errorf("final bucket bound %q, want +Inf", b.LE)
		}
		// Decode the cumulative counts back into per-bucket increments.
		h.shards[0].counts[i].Add(b.Count - prev)
		prev = b.Count
	}
	h.shards[0].sum.Add(int64(math.Round(s.SumSeconds * float64(time.Second))))
	return nil
}
