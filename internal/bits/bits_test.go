package bits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFlip64Involution(t *testing.T) {
	vals := []float64{0, 1, -1, 0.5, 3.14159, 1e300, 1e-300, math.MaxFloat64}
	for _, v := range vals {
		for i := uint(0); i < Width64; i++ {
			if got := Flip64(Flip64(v, i), i); got != v {
				t.Errorf("Flip64(Flip64(%g,%d),%d) = %g, want %g", v, i, i, got, v)
			}
		}
	}
}

func TestFlip64SignBit(t *testing.T) {
	if got := Flip64(1.0, 63); got != -1.0 {
		t.Errorf("sign flip of 1.0 = %g, want -1", got)
	}
	if got := Flip64(-2.5, 63); got != 2.5 {
		t.Errorf("sign flip of -2.5 = %g, want 2.5", got)
	}
}

func TestFlip64ZeroHighExponent(t *testing.T) {
	// Flipping the highest exponent bit (bit 62) of +0 gives 2^(1024-1023)...
	// bits pattern 0x4000000000000000 == 2.0, the paper's "maximum
	// perturbation of 2 occurs when there is a flip in the highest exponent
	// bit" of a zero-valued 32-bit float; for float64 the same bit yields 2.
	if got := Flip64(0, 62); got != 2.0 {
		t.Errorf("Flip64(0,62) = %g, want 2", got)
	}
}

func TestFlip64OutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Flip64 with bit 64 did not panic")
		}
	}()
	Flip64(1, 64)
}

func TestFlip32Involution(t *testing.T) {
	vals := []float32{0, 1, -1, 0.5, 3.14159, 1e30, 1e-30}
	for _, v := range vals {
		for i := uint(0); i < Width32; i++ {
			if got := Flip32(Flip32(v, i), i); got != v {
				t.Errorf("Flip32(Flip32(%g,%d),%d) = %g, want %g", v, i, i, got, v)
			}
		}
	}
}

func TestErr64MantissaSmall(t *testing.T) {
	// Flipping the lowest mantissa bit of 1.0 introduces one ulp.
	e := Err64(1.0, 0)
	if e <= 0 || e > 1e-15 {
		t.Errorf("Err64(1,0) = %g, want one ulp of 1.0", e)
	}
}

func TestErr64UnsafeIsInf(t *testing.T) {
	// Flipping the last zero exponent bit of MaxFloat64 produces Inf/NaN.
	v := math.MaxFloat64 // exponent 0x7fe; flipping bit 52 sets 0x7ff.
	e := Err64(v, 52)
	if !math.IsInf(e, 1) {
		t.Errorf("Err64(MaxFloat64,52) = %g, want +Inf", e)
	}
}

func TestErrsAll64(t *testing.T) {
	errs := ErrsAll64(nil, 1.0)
	if len(errs) != Width64 {
		t.Fatalf("len = %d, want %d", len(errs), Width64)
	}
	for i, e := range errs {
		if e < 0 {
			t.Errorf("errs[%d] = %g, negative", i, e)
		}
		if want := Err64(1.0, uint(i)); e != want && !(math.IsInf(e, 1) && math.IsInf(want, 1)) {
			t.Errorf("errs[%d] = %g, want %g", i, e, want)
		}
	}
}

func TestIsUnsafe(t *testing.T) {
	cases := []struct {
		v    float64
		want bool
	}{
		{0, false}, {1, false}, {-1e308, false},
		{math.NaN(), true}, {math.Inf(1), true}, {math.Inf(-1), true},
	}
	for _, c := range cases {
		if got := IsUnsafe(c.v); got != c.want {
			t.Errorf("IsUnsafe(%g) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestFlipMakesUnsafe(t *testing.T) {
	if !FlipMakesUnsafe(math.MaxFloat64, 52) {
		t.Error("MaxFloat64 bit 52 should become unsafe")
	}
	if FlipMakesUnsafe(1.0, 0) {
		t.Error("1.0 mantissa flip should stay safe")
	}
}

func TestExponentAndSign(t *testing.T) {
	if ExponentBits64(1.0) != 1023 {
		t.Errorf("exponent of 1.0 = %d, want 1023", ExponentBits64(1.0))
	}
	if SignBit64(1.0) || !SignBit64(-1.0) {
		t.Error("sign bit detection wrong")
	}
}

func TestMaxMinErr64(t *testing.T) {
	maxE, maxB := MaxErr64(1.0)
	minE, minB := MinErr64(1.0)
	if maxB >= Width64 || minB >= Width64 {
		t.Fatalf("bit positions out of range: %d %d", maxB, minB)
	}
	if maxE < minE {
		t.Errorf("max err %g < min err %g", maxE, minE)
	}
	if minE <= 0 {
		t.Errorf("min err %g, want > 0", minE)
	}
	// For 1.0 flipping the top exponent bit (62) would set the exponent to
	// 0x7ff (Inf) and is skipped as unsafe; the worst finite flip is the
	// sign bit, error 2.0.
	if maxB != 63 || maxE != 2.0 {
		t.Errorf("max finite err for 1.0 = (%g, bit %d), want (2, 63)", maxE, maxB)
	}
}

// Property: a flip always changes the bit pattern, and for finite results
// the error is strictly positive unless the value is NaN-adjacent.
func TestQuickFlipChangesValue(t *testing.T) {
	f := func(v float64, bitRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true // model only injects into valid data
		}
		bit := uint(bitRaw) % Width64
		got := Flip64(v, bit)
		return math.Float64bits(got) != math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: error of a mantissa-bit flip is bounded by the value's scale
// (one ulp at bit 0 up to half the value's magnitude at bit 51) for normal
// numbers.
func TestQuickMantissaErrBounded(t *testing.T) {
	f := func(v float64, bitRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			return true
		}
		if ExponentBits64(v) == 0 || ExponentBits64(v) == 0x7ff {
			return true // subnormals / specials out of scope
		}
		bit := uint(bitRaw) % 52 // mantissa bits only
		e := Err64(v, bit)
		return e <= math.Abs(v) // mantissa flip < one unit in the first place
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: involution holds for arbitrary values and bits.
func TestQuickInvolution(t *testing.T) {
	f := func(v float64, bitRaw uint8) bool {
		if math.IsNaN(v) {
			return true // NaN payload bit patterns may not round-trip via ==
		}
		bit := uint(bitRaw) % Width64
		back := Flip64(Flip64(v, bit), bit)
		return math.Float64bits(back) == math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFlip64(b *testing.B) {
	v := 3.14159
	for i := 0; i < b.N; i++ {
		v = Flip64(v, uint(i)&63)
	}
	_ = v
}

func BenchmarkErrsAll64(b *testing.B) {
	buf := make([]float64, 0, Width64)
	for i := 0; i < b.N; i++ {
		buf = ErrsAll64(buf[:0], 3.14159)
	}
}

func TestPaperZeroValue32Claims(t *testing.T) {
	// §4.2 of the paper: "In a 32-bit float-point variable with a value of
	// zero, a maximum perturbation of 2 occurs when there is a flip in the
	// highest exponent bit. Perturbation in the remaining 31 bits causes
	// only small errors, with a maximum value of 1.08e-19."
	if got := Err32(0, 30); got != 2 {
		t.Errorf("highest exponent bit of zero: err %g, want 2", got)
	}
	var maxOther float64
	for b := uint(0); b < Width32; b++ {
		if b == 30 {
			continue
		}
		if e := Err32(0, b); e > maxOther {
			maxOther = e
		}
	}
	// 2^-63 = 1.0842e-19.
	if math.Abs(maxOther-math.Ldexp(1, -63)) > 1e-25 {
		t.Errorf("max non-top-bit perturbation of zero = %g, want 2^-63 ≈ 1.08e-19", maxOther)
	}
}

func TestErr32SignFlipOfZeroIsFree(t *testing.T) {
	if got := Err32(0, 31); got != 0 {
		t.Errorf("sign flip of +0 has error %g, want 0 (-0 == +0)", got)
	}
}

func TestIsUnsafe32(t *testing.T) {
	if IsUnsafe32(0) || IsUnsafe32(1.5) || IsUnsafe32(-math.MaxFloat32) {
		t.Error("finite float32 flagged unsafe")
	}
	if !IsUnsafe32(float32(math.Inf(1))) || !IsUnsafe32(float32(math.NaN())) {
		t.Error("Inf/NaN not flagged")
	}
}

func TestFlipMakesUnsafe32(t *testing.T) {
	// float32 1.0 exponent is 0x7f; flipping bit 30 -> 0xff -> Inf.
	if !FlipMakesUnsafe32(1.0, 30) {
		t.Error("1.0f bit 30 should become unsafe")
	}
	if FlipMakesUnsafe32(1.0, 0) {
		t.Error("mantissa flip should stay safe")
	}
}
