// Package bits implements the single-bit-flip fault model on IEEE-754
// floating point values.
//
// The model follows the paper's §2.1: a transient fault is simulated as a
// single bit flip in one data element of a dynamic instruction. For a
// 64-bit float there are exactly 64 possible faults per injection site;
// for a 32-bit float there are 32. The package provides the flip itself,
// enumeration of all flips at a site, the error magnitude a flip
// introduces, and classification helpers (does the flip produce NaN/Inf,
// which the runtime treats as a crash).
package bits

import "math"

// Width64 and Width32 are the number of distinct single-bit faults for the
// two IEEE-754 widths supported by the fault model.
const (
	Width64 = 64
	Width32 = 32
)

// Flip64 returns v with bit i (0 = least significant mantissa bit,
// 63 = sign bit) inverted.
func Flip64(v float64, i uint) float64 {
	if i >= Width64 {
		panic("bits: Flip64 bit index out of range")
	}
	return math.Float64frombits(math.Float64bits(v) ^ (1 << i))
}

// Flip32 returns v with bit i (0 = least significant mantissa bit,
// 31 = sign bit) inverted.
func Flip32(v float32, i uint) float32 {
	if i >= Width32 {
		panic("bits: Flip32 bit index out of range")
	}
	return math.Float32frombits(math.Float32bits(v) ^ (1 << i))
}

// Err32 returns the absolute error |Flip32(v,i) - v| introduced by flipping
// bit i of v, as a float64. If the flipped value is NaN or ±Inf the
// returned error is +Inf.
func Err32(v float32, i uint) float64 {
	f := Flip32(v, i)
	if IsUnsafe32(f) {
		return math.Inf(1)
	}
	return math.Abs(float64(f) - float64(v))
}

// IsUnsafe32 reports whether v is NaN or ±Inf.
func IsUnsafe32(v float32) bool {
	return v != v || v > math.MaxFloat32 || v < -math.MaxFloat32
}

// FlipMakesUnsafe32 reports whether flipping bit i of v yields NaN or ±Inf.
func FlipMakesUnsafe32(v float32, i uint) bool {
	return IsUnsafe32(Flip32(v, i))
}

// Err64 returns the absolute error |Flip64(v,i) - v| introduced by flipping
// bit i of v. If the flipped value is NaN or ±Inf the returned error is
// +Inf (any comparison against a finite threshold fails, and the runtime
// classifies such runs as crashes).
func Err64(v float64, i uint) float64 {
	f := Flip64(v, i)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return math.Inf(1)
	}
	return math.Abs(f - v)
}

// ErrsAll64 appends to dst the absolute error of each of the 64 possible
// single-bit flips of v, indexed by bit position, and returns the extended
// slice. dst may be nil.
func ErrsAll64(dst []float64, v float64) []float64 {
	for i := uint(0); i < Width64; i++ {
		dst = append(dst, Err64(v, i))
	}
	return dst
}

// IsUnsafe reports whether v is NaN or ±Inf — a value that would trap in a
// signalling-FP environment. The trace runtime aborts an injection run as a
// crash when a tracked store produces an unsafe value.
func IsUnsafe(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// FlipMakesUnsafe reports whether flipping bit i of v yields NaN or ±Inf.
// Used during prediction: such a flip is predicted to crash rather than to
// be masked or cause SDC.
func FlipMakesUnsafe(v float64, i uint) bool {
	return IsUnsafe(Flip64(v, i))
}

// ExponentBits64 returns the biased exponent field of v.
func ExponentBits64(v float64) uint {
	return uint(math.Float64bits(v) >> 52 & 0x7ff)
}

// SignBit64 reports whether the sign bit of v is set.
func SignBit64(v float64) bool {
	return math.Float64bits(v)>>63 == 1
}

// MaxErr64 returns the largest finite absolute error any single-bit flip of
// v can introduce, and the bit position that causes it. Flips that produce
// NaN/Inf are skipped (they crash rather than corrupt). If every flip is
// unsafe, MaxErr64 returns (0, Width64).
func MaxErr64(v float64) (err float64, bit uint) {
	bit = Width64
	for i := uint(0); i < Width64; i++ {
		e := Err64(v, i)
		if math.IsInf(e, 1) {
			continue
		}
		if bit == Width64 || e > err {
			err, bit = e, i
		}
	}
	return err, bit
}

// MinErr64 returns the smallest nonzero absolute error any single-bit flip
// of v can introduce, and the bit position that causes it. Flips producing
// NaN/Inf are skipped. If every flip is unsafe, MinErr64 returns
// (+Inf, Width64).
func MinErr64(v float64) (err float64, bit uint) {
	err, bit = math.Inf(1), Width64
	for i := uint(0); i < Width64; i++ {
		e := Err64(v, i)
		if math.IsInf(e, 1) || e == 0 {
			continue
		}
		if e < err {
			err, bit = e, i
		}
	}
	return err, bit
}
