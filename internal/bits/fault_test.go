package bits

import (
	"math"
	"math/bits"
	"testing"
)

func TestFaultModelDefaultMatchesFlip(t *testing.T) {
	var m FaultModel
	if !m.IsDefault() {
		t.Fatal("zero FaultModel is not default")
	}
	vals := []float64{0, 1, -2.5, 1e-300, math.Pi}
	for _, v := range vals {
		for b := uint(0); b < Width64; b++ {
			if got, want := m.Apply64(v, 7, b), Flip64(v, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Apply64(%g, bit %d) = %g, Flip64 = %g", v, b, got, want)
			}
		}
	}
	for b := uint(0); b < Width32; b++ {
		if got, want := m.Apply32(1.5, 3, b), Flip32(1.5, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("Apply32(bit %d) = %g, Flip32 = %g", b, got, want)
		}
	}
}

func TestFaultModelPopulations(t *testing.T) {
	cases := []struct {
		region Region
		w64    int
		w32    int
	}{
		{RegionAll, 64, 32},
		{RegionMantissa, 52, 23},
		{RegionExponent, 11, 8},
		{RegionSign, 1, 1},
	}
	for _, c := range cases {
		m := FaultModel{Region: c.region}
		if got := m.BitsPerSite(Width64); got != c.w64 {
			t.Errorf("region %d BitsPerSite(64) = %d, want %d", c.region, got, c.w64)
		}
		if got := m.BitsPerSite(Width32); got != c.w32 {
			t.Errorf("region %d BitsPerSite(32) = %d, want %d", c.region, got, c.w32)
		}
	}
}

// TestFaultModelRegionMasks verifies region-targeted flips only touch the
// named field, at both widths.
func TestFaultModelRegionMasks(t *testing.T) {
	const (
		mant64 = uint64(1)<<52 - 1
		exp64  = uint64(0x7ff) << 52
		sign64 = uint64(1) << 63
	)
	regions64 := map[Region]uint64{RegionMantissa: mant64, RegionExponent: exp64, RegionSign: sign64}
	v := 3.141592653589793
	for region, field := range regions64 {
		m := FaultModel{Region: region}
		for c := 0; c < m.BitsPerSite(Width64); c++ {
			diff := math.Float64bits(v) ^ math.Float64bits(m.Apply64(v, 0, uint(c)))
			if bits.OnesCount64(diff) != 1 || diff&field == 0 {
				t.Fatalf("region %d coord %d flipped bits %#x outside field %#x", region, c, diff, field)
			}
		}
	}
	const (
		mant32 = uint32(1)<<23 - 1
		exp32  = uint32(0xff) << 23
		sign32 = uint32(1) << 31
	)
	regions32 := map[Region]uint32{RegionMantissa: mant32, RegionExponent: exp32, RegionSign: sign32}
	v32 := float32(2.71828)
	for region, field := range regions32 {
		m := FaultModel{Region: region}
		for c := 0; c < m.BitsPerSite(Width32); c++ {
			diff := math.Float32bits(v32) ^ math.Float32bits(m.Apply32(v32, 0, uint(c)))
			if bits.OnesCount32(diff) != 1 || diff&field == 0 {
				t.Fatalf("region %d coord %d flipped bits %#x outside field %#x", region, c, diff, field)
			}
		}
	}
}

// TestFaultModelStuckAtIdempotent: applying a stuck-at fault twice equals
// applying it once, and the result has the bit forced to the stuck value.
func TestFaultModelStuckAtIdempotent(t *testing.T) {
	vals := []float64{0, 1, -1, 255.75, -1e300}
	for _, kind := range []FaultKind{FaultStuckAt0, FaultStuckAt1} {
		m := FaultModel{Kind: kind}
		for _, v := range vals {
			for c := uint(0); c < Width64; c++ {
				once := m.Apply64(v, 5, c)
				twice := m.Apply64(once, 5, c)
				if math.Float64bits(once) != math.Float64bits(twice) {
					t.Fatalf("%v not idempotent at coord %d on %g", m, c, v)
				}
				bit := math.Float64bits(once) >> c & 1
				want := uint64(0)
				if kind == FaultStuckAt1 {
					want = 1
				}
				if bit != want {
					t.Fatalf("%v left bit %d = %d on %g", m, c, bit, v)
				}
			}
		}
		// 32-bit spot check.
		v32 := float32(7.5)
		for c := uint(0); c < Width32; c++ {
			once := m.Apply32(v32, 5, c)
			if got := m.Apply32(once, 5, c); math.Float32bits(got) != math.Float32bits(once) {
				t.Fatalf("%v not idempotent at 32-bit coord %d", m, c)
			}
		}
	}
}

// TestFaultModelBurstBoundary: bursts clamp at the region edge instead of
// wrapping, so the topmost coordinate flips exactly one bit.
func TestFaultModelBurstBoundary(t *testing.T) {
	for _, tc := range []struct {
		region Region
		width  int
		k      int
	}{
		{RegionAll, Width64, 4},
		{RegionAll, Width32, 4},
		{RegionMantissa, Width64, 3},
		{RegionExponent, Width32, 5},
	} {
		m := FaultModel{Kind: FaultBurstFlip, Region: tc.region, K: tc.k}
		n := uint(m.BitsPerSite(tc.width))
		start, _ := m.regionSpan(tc.width)
		for c := uint(0); c < n; c++ {
			diff := m.xorMask(tc.width, 0, c)
			want := int(tc.k)
			if rem := int(n - c); rem < want {
				want = rem
			}
			if got := bits.OnesCount64(diff); got != want {
				t.Fatalf("%v width %d coord %d: burst flips %d bits, want %d", m, tc.width, c, got, want)
			}
			lo := bits.TrailingZeros64(diff)
			hi := 63 - bits.LeadingZeros64(diff)
			if uint(lo) != start+c || uint(hi) >= start+n {
				t.Fatalf("%v width %d coord %d: burst span [%d,%d] escapes region [%d,%d)", m, tc.width, c, lo, hi, start+c, start+n)
			}
		}
	}
}

// TestFaultModelMultiFlipDeterministic: partner bits are a pure function of
// (site, coord), stay inside the region, and hit exactly K bits.
func TestFaultModelMultiFlipDeterministic(t *testing.T) {
	m := FaultModel{Kind: FaultMultiFlip, Region: RegionExponent, K: 3}
	n := uint(m.BitsPerSite(Width64))
	start, _ := m.regionSpan(Width64)
	field := (uint64(1)<<n - 1) << start
	seen := map[uint64]bool{}
	for site := 0; site < 8; site++ {
		for c := uint(0); c < n; c++ {
			a := m.xorMask(Width64, site, c)
			b := m.xorMask(Width64, site, c)
			if a != b {
				t.Fatalf("multi-flip mask not deterministic at (%d,%d)", site, c)
			}
			if bits.OnesCount64(a) != 3 {
				t.Fatalf("multi-flip mask at (%d,%d) has %d bits, want 3", site, c, bits.OnesCount64(a))
			}
			if a&^field != 0 {
				t.Fatalf("multi-flip mask %#x escapes region field %#x", a, field)
			}
			if a&(1<<(start+c)) == 0 {
				t.Fatalf("multi-flip mask at (%d,%d) misses the primary bit", site, c)
			}
			seen[a] = true
		}
	}
	if len(seen) < 2 {
		t.Fatal("multi-flip masks are all identical; partner hash is degenerate")
	}
}

func TestFaultModelStringParseRoundTrip(t *testing.T) {
	models := []FaultModel{
		{},
		{Kind: FaultMultiFlip, K: 3},
		{Kind: FaultBurstFlip, K: 4},
		{Kind: FaultStuckAt0},
		{Kind: FaultStuckAt1},
		{Region: RegionExponent},
		{Region: RegionMantissa, Kind: FaultBurstFlip, K: 3},
		{Region: RegionSign, Kind: FaultStuckAt1},
	}
	for _, m := range models {
		got, err := ParseFaultModel(m.String())
		if err != nil {
			t.Fatalf("ParseFaultModel(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("round trip %q: got %+v, want %+v", m.String(), got, m)
		}
	}
	if m, err := ParseFaultModel(""); err != nil || !m.IsDefault() {
		t.Fatalf("ParseFaultModel(\"\") = %+v, %v; want default", m, err)
	}
	for _, bad := range []string{"flip", "multi", "multi0", "burst-1", "burstx", "nose:bitflip", "exponent:", "stuck2"} {
		if _, err := ParseFaultModel(bad); err == nil {
			t.Errorf("ParseFaultModel(%q) succeeded, want error", bad)
		}
	}
}

func TestFaultModelValidate(t *testing.T) {
	ok := []FaultModel{
		{},
		{Kind: FaultBurstFlip, K: 4},
		{Kind: FaultMultiFlip, Region: RegionExponent, K: 8},
		{Kind: FaultStuckAt1, Region: RegionSign},
	}
	for _, m := range ok {
		if err := m.Validate(Width32); err != nil {
			t.Errorf("Validate(%v, 32): %v", m, err)
		}
		if err := m.Validate(Width64); err != nil {
			t.Errorf("Validate(%v, 64): %v", m, err)
		}
	}
	bad := []struct {
		m     FaultModel
		width int
	}{
		{FaultModel{Kind: FaultMultiFlip, Region: RegionSign, K: 2}, Width64},
		{FaultModel{Kind: FaultMultiFlip, Region: RegionExponent, K: 9}, Width32},
		{FaultModel{Kind: FaultStuckAt0, K: 2}, Width64},
		{FaultModel{}, 16},
		{FaultModel{Kind: numFaultKinds}, Width64},
		{FaultModel{Region: numRegions}, Width64},
	}
	for _, tc := range bad {
		if err := tc.m.Validate(tc.width); err == nil {
			t.Errorf("Validate(%+v, %d) succeeded, want error", tc.m, tc.width)
		}
	}
}
