package bits

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
)

// FaultKind selects how a fault perturbs the bit pattern of a stored value.
type FaultKind uint8

const (
	// FaultBitFlip flips exactly one bit — the paper's fault model and the
	// zero value, so an unconfigured FaultModel reproduces historical
	// behavior exactly.
	FaultBitFlip FaultKind = iota
	// FaultMultiFlip flips the selected bit plus K-1 further bits of the
	// same region, chosen by a deterministic hash of (site, coordinate) so
	// the fault is a pure function of the experiment identity.
	FaultMultiFlip
	// FaultBurstFlip flips K consecutive bits starting at the selected
	// coordinate, clamped at the region's upper edge (a burst starting
	// near the edge flips fewer bits rather than wrapping).
	FaultBurstFlip
	// FaultStuckAt0 forces the selected bit to 0. If the bit is already 0
	// the store is unperturbed (injErr 0) but still counts as injected.
	FaultStuckAt0
	// FaultStuckAt1 forces the selected bit to 1.
	FaultStuckAt1
	numFaultKinds
)

// Region restricts the per-site fault population to a field of the IEEE-754
// representation. Coordinates are region-relative: coordinate 0 is the
// region's lowest physical bit.
type Region uint8

const (
	// RegionAll is the full word: 64 or 32 coordinates.
	RegionAll Region = iota
	// RegionExponent covers the biased-exponent field: bits 52..62 of a
	// float64 (11 coordinates), bits 23..30 of a float32 (8).
	RegionExponent
	// RegionMantissa covers the fraction field: bits 0..51 of a float64
	// (52 coordinates), bits 0..22 of a float32 (23).
	RegionMantissa
	// RegionSign is the sign bit alone: one coordinate.
	RegionSign
	numRegions
)

// FaultModel describes the perturbation applied at the injection site. The
// zero value is the paper's model: a single bit flip anywhere in the word.
//
// A model defines, per width, a population of BitsPerSite coordinates; a
// campaign over the model enumerates (site, coordinate) pairs exactly as the
// single-flip campaign enumerates (site, bit) pairs. Every perturbation is a
// pure function of (value, site, coordinate), so ground truth remains
// deterministic and byte-identical across worker counts, replay, and
// cluster execution.
type FaultModel struct {
	Kind   FaultKind
	Region Region
	// K is the arity of multi/burst faults (number of bits touched).
	// Ignored by the other kinds. 0 is treated as 1 for convenience.
	K int
}

// DefaultFaultModel is the paper's single-bit-flip model.
var DefaultFaultModel = FaultModel{}

// IsDefault reports whether m is behaviorally the paper's model: a single
// bit flip over the whole word.
func (m FaultModel) IsDefault() bool {
	return m.Region == RegionAll && (m.Kind == FaultBitFlip ||
		((m.Kind == FaultMultiFlip || m.Kind == FaultBurstFlip) && m.K <= 1))
}

// regionSpan returns the physical bit offset of the region's lowest bit and
// the number of coordinates in the region at the given width.
func (m FaultModel) regionSpan(width int) (start, n uint) {
	var mant, exp uint
	switch width {
	case Width64:
		mant, exp = 52, 11
	case Width32:
		mant, exp = 23, 8
	default:
		panic(fmt.Sprintf("bits: fault model width %d (want 32 or 64)", width))
	}
	switch m.Region {
	case RegionAll:
		return 0, mant + exp + 1
	case RegionMantissa:
		return 0, mant
	case RegionExponent:
		return mant, exp
	case RegionSign:
		return mant + exp, 1
	default:
		panic(fmt.Sprintf("bits: invalid fault region %d", m.Region))
	}
}

// BitsPerSite returns the size of the per-site fault population at the
// given width (32 or 64): the number of valid injection coordinates.
func (m FaultModel) BitsPerSite(width int) int {
	_, n := m.regionSpan(width)
	return int(n)
}

// Validate checks that the model is well-formed for the given width.
func (m FaultModel) Validate(width int) error {
	if width != Width32 && width != Width64 {
		return fmt.Errorf("bits: fault model width %d (want 32 or 64)", width)
	}
	if m.Kind >= numFaultKinds {
		return fmt.Errorf("bits: invalid fault kind %d", m.Kind)
	}
	if m.Region >= numRegions {
		return fmt.Errorf("bits: invalid fault region %d", m.Region)
	}
	switch m.Kind {
	case FaultMultiFlip, FaultBurstFlip:
		_, n := m.regionSpan(width)
		if m.K < 0 {
			return fmt.Errorf("bits: fault arity %d is negative", m.K)
		}
		if uint(m.K) > n {
			return fmt.Errorf("bits: fault arity %d exceeds region population %d", m.K, n)
		}
	default:
		if m.K != 0 {
			return fmt.Errorf("bits: fault kind %q does not take an arity (K=%d)", kindName(m.Kind), m.K)
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used to
// derive multi-flip partner coordinates deterministically from the
// experiment identity. Not cryptographic; stability across releases is the
// only requirement (changing it would change ground truth).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// xorMask returns the set of physical bits to flip for flip-style kinds.
// coord must be < BitsPerSite(width).
func (m FaultModel) xorMask(width int, site int, coord uint) uint64 {
	start, n := m.regionSpan(width)
	if coord >= n {
		panic(fmt.Sprintf("bits: fault coordinate %d outside population %d", coord, n))
	}
	mask := uint64(1) << (start + coord)
	k := m.K
	if k < 1 {
		k = 1
	}
	switch m.Kind {
	case FaultBitFlip:
		return mask
	case FaultBurstFlip:
		for j := uint(1); j < uint(k) && coord+j < n; j++ {
			mask |= 1 << (start + coord + j)
		}
		return mask
	case FaultMultiFlip:
		// Draw partner coordinates from a hash stream seeded by the
		// experiment identity, skipping duplicates. k ≤ n is enforced by
		// Validate, so the loop terminates.
		state := splitmix64(uint64(site)<<20 ^ uint64(coord) ^ 0xf17bf17b)
		for bits.OnesCount64(mask) < k {
			state = splitmix64(state)
			mask |= 1 << (start + uint(state%uint64(n)))
		}
		return mask
	default:
		panic(fmt.Sprintf("bits: xorMask on fault kind %q", kindName(m.Kind)))
	}
}

// apply perturbs the raw bit pattern b of a width-bit value stored at the
// given site, at the given region-relative coordinate.
func (m FaultModel) apply(b uint64, width int, site int, coord uint) uint64 {
	switch m.Kind {
	case FaultStuckAt0, FaultStuckAt1:
		start, n := m.regionSpan(width)
		if coord >= n {
			panic(fmt.Sprintf("bits: fault coordinate %d outside population %d", coord, n))
		}
		if m.Kind == FaultStuckAt0 {
			return b &^ (1 << (start + coord))
		}
		return b | 1<<(start+coord)
	default:
		return b ^ m.xorMask(width, site, coord)
	}
}

// Apply64 perturbs a float64 stored at the given site. Panics if coord is
// outside the model's population at width 64.
func (m FaultModel) Apply64(v float64, site int, coord uint) float64 {
	return math.Float64frombits(m.apply(math.Float64bits(v), Width64, site, coord))
}

// Apply32 perturbs a float32 stored at the given site. Panics if coord is
// outside the model's population at width 32.
func (m FaultModel) Apply32(v float32, site int, coord uint) float32 {
	return math.Float32frombits(uint32(m.apply(uint64(math.Float32bits(v)), Width32, site, coord)))
}

func kindName(k FaultKind) string {
	switch k {
	case FaultBitFlip:
		return "bitflip"
	case FaultMultiFlip:
		return "multi"
	case FaultBurstFlip:
		return "burst"
	case FaultStuckAt0:
		return "stuck0"
	case FaultStuckAt1:
		return "stuck1"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

func regionName(r Region) string {
	switch r {
	case RegionAll:
		return ""
	case RegionExponent:
		return "exponent"
	case RegionMantissa:
		return "mantissa"
	case RegionSign:
		return "sign"
	default:
		return fmt.Sprintf("Region(%d)", uint8(r))
	}
}

// String renders the canonical form parsed by ParseFaultModel:
// "bitflip", "multi3", "burst4", "stuck0", "stuck1", optionally prefixed by
// a region — "exponent:bitflip", "mantissa:burst3", "sign:stuck1". The
// canonical form is a store-identity facet, so it must be stable.
func (m FaultModel) String() string {
	var sb strings.Builder
	if name := regionName(m.Region); name != "" {
		sb.WriteString(name)
		sb.WriteByte(':')
	}
	sb.WriteString(kindName(m.Kind))
	if m.Kind == FaultMultiFlip || m.Kind == FaultBurstFlip {
		k := m.K
		if k < 1 {
			k = 1
		}
		sb.WriteString(strconv.Itoa(k))
	}
	return sb.String()
}

// ParseFaultModel parses the canonical form produced by String. The empty
// string parses as the default single-bit-flip model. Width-dependent
// bounds (arity vs region population) are checked by Validate, not here.
func ParseFaultModel(s string) (FaultModel, error) {
	var m FaultModel
	if s == "" {
		return m, nil
	}
	kind := s
	if region, rest, ok := strings.Cut(s, ":"); ok {
		switch region {
		case "exponent":
			m.Region = RegionExponent
		case "mantissa":
			m.Region = RegionMantissa
		case "sign":
			m.Region = RegionSign
		case "all":
			m.Region = RegionAll
		default:
			return m, fmt.Errorf("bits: unknown fault region %q in %q", region, s)
		}
		kind = rest
	}
	switch {
	case kind == "bitflip":
		m.Kind = FaultBitFlip
	case kind == "stuck0":
		m.Kind = FaultStuckAt0
	case kind == "stuck1":
		m.Kind = FaultStuckAt1
	case strings.HasPrefix(kind, "multi"), strings.HasPrefix(kind, "burst"):
		m.Kind = FaultMultiFlip
		digits := kind[len("multi"):]
		if strings.HasPrefix(kind, "burst") {
			m.Kind = FaultBurstFlip
		}
		k, err := strconv.Atoi(digits)
		if err != nil || k < 1 {
			return m, fmt.Errorf("bits: fault model %q: arity must be a positive integer", s)
		}
		m.K = k
	default:
		return m, fmt.Errorf("bits: unknown fault model %q (want bitflip, multiK, burstK, stuck0, or stuck1, optionally region-prefixed)", s)
	}
	return m, nil
}
