package experiments

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"ftb"
)

func TestTable1ShapeHolds(t *testing.T) {
	res, err := Table1(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's claim: boundary-approximated SDC is very close to golden.
	if gap := res.MaxAbsGap(); gap > 0.05 {
		t.Errorf("max |golden-approx| gap %.4f > 0.05", gap)
	}
	for _, row := range res.Rows {
		if row.GoldenSDC <= 0 || row.GoldenSDC >= 1 {
			t.Errorf("%s golden SDC %.3f implausible", row.Name, row.GoldenSDC)
		}
		if row.Size == 0 {
			t.Errorf("%s zero size", row.Name)
		}
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "cg", "lu", "fft", "Golden_SDC"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	res, err := Figure3(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benches) != 3 {
		t.Fatalf("benches = %d", len(res.Benches))
	}
	for _, b := range res.Benches {
		// The boundary is exact for the majority of sites.
		if frac := float64(b.ExactSites) / float64(b.Sites); frac < 0.5 {
			t.Errorf("%s: only %.1f%% sites exact", b.Name, 100*frac)
		}
		// ΔSDC from an exhaustive-search boundary can only be ≤ 0 plus
		// crash-mispredictions; it must be bounded.
		for _, d := range b.Delta {
			if math.Abs(d) > 1 {
				t.Errorf("%s: |ΔSDC| = %g > 1", b.Name, d)
			}
		}
		if b.Hist.Total() != b.Sites {
			t.Errorf("%s: histogram total %d != sites %d", b.Name, b.Hist.Total(), b.Sites)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 3") {
		t.Error("render missing title")
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	// At test scale use a generous sampling rate so the tiny kernels get
	// enough propagation data for meaningful precision.
	res, err := table2At(ScaleTest, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Precision.Mean < 0.85 {
			t.Errorf("%s precision %.3f < 0.85", row.Name, row.Precision.Mean)
		}
		if row.Recall.Mean <= 0 {
			t.Errorf("%s recall is zero", row.Name)
		}
		// Uncertainty tracks precision (the self-verification claim).
		if d := math.Abs(row.Uncertainty.Mean - row.Precision.Mean); d > 0.2 {
			t.Errorf("%s |uncertainty-precision| = %.3f", row.Name, d)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Uncertainty") {
		t.Error("render missing header")
	}
}

func TestFigure4ShapeHolds(t *testing.T) {
	res, err := Figure4(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benches) != 3 {
		t.Fatalf("benches = %d", len(res.Benches))
	}
	for _, b := range res.Benches {
		if len(b.Uniform.TrueSDC) == 0 || len(b.Uniform.TrueSDC) != len(b.Uniform.PredSDC) {
			t.Fatalf("%s: bad group lengths", b.Name)
		}
		if len(b.Impact) != len(b.Uniform.TrueSDC) {
			t.Fatalf("%s: impact length mismatch", b.Name)
		}
		// Predictions assume unknown=SDC, so grouped predictions must not
		// systematically undershoot the truth by much.
		for i := range b.Uniform.TrueSDC {
			if b.Uniform.PredSDC[i] < b.Uniform.TrueSDC[i]-0.35 {
				t.Errorf("%s group %d: pred %.3f far below true %.3f",
					b.Name, i, b.Uniform.PredSDC[i], b.Uniform.TrueSDC[i])
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "row 2") {
		t.Error("render missing rows")
	}
}

func TestFigure5ShapeHolds(t *testing.T) {
	// Shrunken sweep for test speed.
	res, err := figure5At(ScaleTest, []float64{0.02, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Benches {
		if len(b.WithFilter) != 2 || len(b.WithoutFilter) != 2 {
			t.Fatalf("%s: point counts wrong", b.Name)
		}
		// Recall grows with sample size.
		if b.WithoutFilter[1].Recall.Mean < b.WithoutFilter[0].Recall.Mean-0.05 {
			t.Errorf("%s: recall decreased with more samples: %.3f -> %.3f",
				b.Name, b.WithoutFilter[0].Recall.Mean, b.WithoutFilter[1].Recall.Mean)
		}
		// The filter keeps precision at least as high as without it.
		for i := range b.WithFilter {
			if b.WithFilter[i].Precision.Mean < b.WithoutFilter[i].Precision.Mean-0.02 {
				t.Errorf("%s frac %.3f: filtered precision %.3f below unfiltered %.3f",
					b.Name, b.WithFilter[i].Frac,
					b.WithFilter[i].Precision.Mean, b.WithoutFilter[i].Precision.Mean)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "precision") {
		t.Error("render missing legend")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	res, err := Table3(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SampleFrac.Mean <= 0 || row.SampleFrac.Mean >= 1 {
			t.Errorf("%s sample fraction %.4f outside (0,1)", row.Name, row.SampleFrac.Mean)
		}
		// Unknown-is-SDC: predicted ratio must not undershoot golden much.
		if row.PredSDC.Mean < row.GoldenSDC-0.1 {
			t.Errorf("%s predicted %.3f well below golden %.3f",
				row.Name, row.PredSDC.Mean, row.GoldenSDC)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Table 3") {
		t.Error("render missing title")
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	res, err := Table4(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, large := res.Rows[0], res.Rows[1]
	if large.Sites <= small.Sites {
		t.Errorf("sizes not increasing: %d then %d", small.Sites, large.Sites)
	}
	for _, row := range res.Rows {
		if row.Precision.Mean < 0.85 {
			t.Errorf("%s precision %.3f", row.Input, row.Precision.Mean)
		}
		if row.Samples <= 0 || row.Samples > row.Space {
			t.Errorf("%s budget %d out of range", row.Input, row.Samples)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Table 4") {
		t.Error("render missing title")
	}
}

func TestMonotonicityAblation(t *testing.T) {
	res, err := Monotonicity(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]MonotonicRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	// §5: stencil, matvec, spmv and matmul have provably monotonic
	// (linear) error responses.
	for _, name := range []string{"stencil", "matvec", "spmv", "matmul"} {
		if f := byName[name].Fraction(); f > 0.02 {
			t.Errorf("%s non-monotonic fraction %.4f, want ~0", name, f)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Non-monotonic") {
		t.Error("render missing header")
	}
}

func TestBaselineComparison(t *testing.T) {
	res, err := Baseline(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Budget <= 0 || row.Budget > row.Space {
			t.Errorf("%s: budget %d outside (0, %d]", row.Name, row.Budget, row.Space)
		}
		if row.Reduction < 1 {
			t.Errorf("%s: reduction %.1fx < 1", row.Name, row.Reduction)
		}
		// Boundary covers every site by construction.
		if row.BoundaryCoverage != 1 {
			t.Errorf("%s: boundary coverage %.2f", row.Name, row.BoundaryCoverage)
		}
		// Monte Carlo at a sub-exhaustive budget covers at most all sites.
		if row.MCSiteCoverage <= 0 || row.MCSiteCoverage > 1 {
			t.Errorf("%s: MC coverage %.2f", row.Name, row.MCSiteCoverage)
		}
		// Both estimates should be in the truth's neighbourhood.
		if row.MCSDC < 0 || row.MCSDC > 1 {
			t.Errorf("%s: MC estimate %.3f", row.Name, row.MCSDC)
		}
		if row.BoundaryMAE < 0 || row.BoundaryMAE > 1 {
			t.Errorf("%s: boundary MAE %.3f", row.Name, row.BoundaryMAE)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Monte Carlo") {
		t.Error("render missing header")
	}
}

func TestAblationStrategies(t *testing.T) {
	res, err := Ablation(Scale{Size: ScaleTest.Size, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 3 benches x 4 strategies
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Budget <= 0 {
			t.Errorf("%s/%s: budget %d", row.Name, row.Strategy, row.Budget)
		}
		if row.Precision.Mean < 0.5 || row.Precision.Mean > 1 {
			t.Errorf("%s/%s: precision %.3f", row.Name, row.Strategy, row.Precision.Mean)
		}
		if row.Recall.Mean < 0 || row.Recall.Mean > 1 {
			t.Errorf("%s/%s: recall %.3f", row.Name, row.Strategy, row.Recall.Mean)
		}
	}
	if out := res.Render(); !strings.Contains(out, "progressive-adaptive") {
		t.Error("render missing strategy")
	}
}

func TestSensitivityTradeoff(t *testing.T) {
	res, err := Sensitivity(Scale{Size: ScaleTest.Size, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benches) != 3 {
		t.Fatalf("benches = %d", len(res.Benches))
	}
	for _, b := range res.Benches {
		if len(b.Points) != len(SensitivityFactors) {
			t.Fatalf("%s: points = %d", b.Name, len(b.Points))
		}
		// Recall must be non-decreasing in the scaling factor (a larger
		// boundary can only add masked predictions), and precision
		// non-increasing, up to trial noise.
		for i := 1; i < len(b.Points); i++ {
			if b.Points[i].Recall.Mean < b.Points[i-1].Recall.Mean-1e-9 {
				t.Errorf("%s: recall decreased with factor: %.4f -> %.4f",
					b.Name, b.Points[i-1].Recall.Mean, b.Points[i].Recall.Mean)
			}
			// Precision generally trades downward as the boundary grows;
			// it is not strictly monotone (newly admitted predictions can
			// be better than the existing pool), so allow slack.
			if b.Points[i].Precision.Mean > b.Points[i-1].Precision.Mean+0.05 {
				t.Errorf("%s: precision jumped with factor: %.4f -> %.4f",
					b.Name, b.Points[i-1].Precision.Mean, b.Points[i].Precision.Mean)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "factor") {
		t.Error("render missing header")
	}
}

func TestScaleCollectorSections(t *testing.T) {
	col := ftb.NewCollector()
	s := ScaleTest
	s.Collector = col
	if _, err := Table1(s); err != nil {
		t.Fatal(err)
	}
	if _, err := Table3(s); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	var names []string
	for _, sec := range snap.Sections {
		names = append(names, sec.Name)
		if sec.WallSeconds <= 0 {
			t.Errorf("section %s wall-clock = %g, want > 0", sec.Name, sec.WallSeconds)
		}
	}
	if len(names) != 2 || names[0] != "table1" || names[1] != "table3" {
		t.Errorf("sections = %v, want [table1 table3] in run order", names)
	}
	// Table 3's progressive campaigns always run fresh (only exhaustive
	// ground truths are cached), so experiments must have accrued.
	if snap.Experiments == 0 {
		t.Error("no experiments attributed to the collector")
	}
}

func TestScaleRunOptions(t *testing.T) {
	var events atomic.Int64
	s := ScaleTest
	s.RunOptions = []ftb.RunOption{ftb.WithObserver(ftb.ObserverFunc(func(ftb.ProgressEvent) { events.Add(1) }))}
	// Table 3 always runs its progressive campaigns (only exhaustive
	// ground truths are memoized in gtCache), so the observer must see
	// events no matter which tests ran before this one.
	if _, err := Table3(s); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Error("Scale.RunOptions observer received no events")
	}
}

func TestScalePropTrace(t *testing.T) {
	buf := ftb.NewTrajectoryBuffer()
	s := ScaleTest
	s.PropTrace = buf
	// Table 3's progressive campaigns always run fresh (only exhaustive
	// ground truths are memoized in gtCache), so trajectories must accrue
	// regardless of test ordering.
	if _, err := Table3(s); err != nil {
		t.Fatal(err)
	}
	ts := buf.Trajectories()
	if len(ts) == 0 {
		t.Fatal("Scale.PropTrace recorded no trajectories")
	}
	for _, tr := range ts {
		if tr.Program == "" || tr.Outcome == "" {
			t.Fatalf("untagged trajectory: %+v", tr)
		}
	}
}
