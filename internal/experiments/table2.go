package experiments

import (
	"strings"

	"ftb"
	"ftb/internal/stats"
)

// Table2Row summarizes precision, recall and uncertainty of the 1%
// inference boundary over repeated trials (paper Table 2).
type Table2Row struct {
	Name        string
	Precision   stats.Summary
	Recall      stats.Summary
	Uncertainty stats.Summary
}

// Table2Result is the full table.
type Table2Result struct {
	SampleFrac float64
	Rows       []Table2Row
}

// Table2 runs the §4.3 experiment: 1% uniform sampling, Scale.Trials
// trials, evaluated against exhaustive ground truth. The filter operation
// is off, matching the paper's base inference method (the filter is
// studied separately in Figure 5).
func Table2(s Scale) (*Table2Result, error) {
	defer s.section("table2")()
	return table2At(s, 0.01)
}

func table2At(s Scale, frac float64) (*Table2Result, error) {
	s = s.normalized()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{SampleFrac: frac}
	for _, b := range benches {
		var prec, rec, unc []float64
		for trial := 0; trial < s.Trials; trial++ {
			r, err := b.an.InferBoundary(ftb.InferOptions{
				SampleFrac: frac,
				Filter:     false,
				Seed:       trialSeed(s.Seed, trial),
			})
			if err != nil {
				return nil, err
			}
			pr := r.Evaluate(b.gt)
			prec = append(prec, pr.Precision)
			rec = append(rec, pr.Recall)
			unc = append(unc, pr.Uncertainty)
		}
		res.Rows = append(res.Rows, Table2Row{
			Name:        b.name,
			Precision:   stats.Summarize(prec),
			Recall:      stats.Summarize(rec),
			Uncertainty: stats.Summarize(unc),
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			row.Precision.PctString(),
			row.Recall.PctString(),
			row.Uncertainty.PctString(),
		})
	}
	var b strings.Builder
	b.WriteString("Table 2: inference-boundary quality at ")
	b.WriteString(pct(r.SampleFrac))
	b.WriteString(" sampling\n")
	b.WriteString(table([]string{"Name", "Precision", "Recall", "Uncertainty"}, rows))
	return b.String()
}
