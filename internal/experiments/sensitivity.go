package experiments

import (
	"fmt"
	"strings"

	"ftb"
	"ftb/internal/metrics"
	"ftb/internal/stats"
)

// SensitivityFactors is the default boundary-scaling sweep.
var SensitivityFactors = []float64{0.1, 0.5, 1, 2, 10}

// SensitivityPoint scores one scaled boundary.
type SensitivityPoint struct {
	Factor    float64
	Precision stats.Summary
	Recall    stats.Summary
}

// SensitivityBench is one benchmark's sweep.
type SensitivityBench struct {
	Name   string
	Points []SensitivityPoint
}

// SensitivityResult is the boundary-scaling sensitivity ablation: how
// robust are the method's precision and recall to multiplying every
// inferred threshold Δe by a safety factor? A method whose precision
// collapses just above factor 1 would be fragile — its thresholds would
// sit exactly on the cliff edge; the paper's monotonicity argument
// implies a gradual trade instead.
type SensitivityResult struct {
	Factors []float64
	Benches []SensitivityBench
}

// Sensitivity infers a 1%-sample boundary per benchmark per trial and
// scores it at each scaling factor against the exhaustive ground truth.
func Sensitivity(s Scale) (*SensitivityResult, error) {
	s = s.normalized()
	defer s.section("sensitivity")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &SensitivityResult{Factors: SensitivityFactors}
	for _, b := range benches {
		sb := SensitivityBench{Name: b.name}
		prec := make([][]float64, len(res.Factors))
		rec := make([][]float64, len(res.Factors))
		for trial := 0; trial < s.Trials; trial++ {
			r, err := b.an.InferBoundary(ftb.InferOptions{
				SampleFrac: 0.01,
				Filter:     true,
				Seed:       trialSeed(s.Seed, trial),
			})
			if err != nil {
				return nil, err
			}
			for fi, factor := range res.Factors {
				pred, err := b.an.NewPredictor(r.Boundary().Scaled(factor), r.Known())
				if err != nil {
					return nil, err
				}
				pr := metrics.Evaluate(pred, b.gt, r.Known())
				prec[fi] = append(prec[fi], pr.Precision)
				rec[fi] = append(rec[fi], pr.Recall)
			}
		}
		for fi, factor := range res.Factors {
			sb.Points = append(sb.Points, SensitivityPoint{
				Factor:    factor,
				Precision: stats.Summarize(prec[fi]),
				Recall:    stats.Summarize(rec[fi]),
			})
		}
		res.Benches = append(res.Benches, sb)
	}
	return res, nil
}

// Render prints the sweep.
func (r *SensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("Sensitivity: boundary quality vs threshold scaling factor\n")
	header := []string{"bench", "factor", "precision", "recall"}
	var rows [][]string
	for _, bench := range r.Benches {
		for _, p := range bench.Points {
			rows = append(rows, []string{
				bench.Name, fmt.Sprintf("%.2gx", p.Factor),
				p.Precision.PctString(), p.Recall.PctString(),
			})
		}
	}
	b.WriteString(table(header, rows))
	return b.String()
}
