package experiments

import (
	"fmt"
	"strings"

	"ftb"
	"ftb/internal/campaign"
	"ftb/internal/metrics"
	"ftb/internal/rng"
)

// BaselineRow contrasts, at the same injection budget, what a traditional
// Monte Carlo campaign learns versus what the fault tolerance boundary
// learns (the paper's Figure 1 comparison and the abstract's
// orders-of-magnitude claim, quantified).
type BaselineRow struct {
	Name  string
	Space int // sites × bits: what an exhaustive campaign would cost

	// Budget spent by both methods: whatever progressive sampling used.
	Budget int

	// Monte Carlo at the same budget.
	MCSDC          float64 // overall SDC-ratio estimate
	MCCIWidth      float64 // 95% CI width of that single number
	MCSiteCoverage float64 // fraction of sites with at least one sample

	// Boundary method at the same budget.
	BoundarySDC      float64 // overall predicted SDC ratio
	BoundaryMAE      float64 // mean |true − predicted| per-site SDC ratio
	BoundaryCoverage float64 // fraction of sites with a prediction (always 1)

	GoldenSDC float64 // exhaustive truth
	Reduction float64 // Space / Budget
}

// BaselineResult is the full comparison.
type BaselineResult struct {
	Rows []BaselineRow
}

// Baseline runs the comparison: progressive adaptive sampling fixes the
// budget; a Monte Carlo campaign gets the identical budget; both are
// judged against the exhaustive ground truth.
func Baseline(s Scale) (*BaselineResult, error) {
	s = s.normalized()
	defer s.section("baseline")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{}
	for _, b := range benches {
		prog, _, err := b.an.Progressive(ftb.ProgressiveOptions{
			RoundFrac: 0.001,
			Adaptive:  true,
			Filter:    false,
			Seed:      trialSeed(s.Seed, 0),
		})
		if err != nil {
			return nil, err
		}
		budget := prog.Samples()

		mcCfg := campaign.Config{
			Factory:  factoryFor(b.name, s.Size),
			Golden:   b.an.Golden(),
			Tol:      b.an.Tolerance(),
			Bits:     b.an.Bits(),
			Context:  s.Context,
			Observer: s.Observer,
		}
		mc, err := campaign.MonteCarlo(mcCfg, rng.New(trialSeed(s.Seed, 1)), budget)
		if err != nil {
			return nil, err
		}

		pred := prog.Predictor()
		profile := metrics.Profile(pred, b.gt, nil)
		var mae float64
		for i := range profile.TrueSDC {
			d := profile.TrueSDC[i] - profile.PredSDC[i]
			if d < 0 {
				d = -d
			}
			mae += d
		}
		mae /= float64(len(profile.TrueSDC))

		overall := b.gt.Overall()
		res.Rows = append(res.Rows, BaselineRow{
			Name:             b.name,
			Space:            b.an.SampleSpace(),
			Budget:           budget,
			MCSDC:            mc.SDCRatio,
			MCCIWidth:        mc.CIHigh - mc.CILow,
			MCSiteCoverage:   float64(mc.SitesCovered) / float64(b.an.Sites()),
			BoundarySDC:      prog.PredictedSDCRatio(),
			BoundaryMAE:      mae,
			BoundaryCoverage: 1,
			GoldenSDC:        overall.SDCRatio(),
			Reduction:        float64(b.an.SampleSpace()) / float64(budget),
		})
	}
	return res, nil
}

// factoryFor returns a fresh-program factory for a registered kernel.
func factoryFor(name, size string) func() ftb.Program {
	return func() ftb.Program {
		k, err := ftb.NewKernel(name, size)
		if err != nil {
			panic(err)
		}
		return k
	}
}

// Render prints the comparison table.
func (r *BaselineResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d/%d (%.2f%%)", row.Budget, row.Space, 100*float64(row.Budget)/float64(row.Space)),
			pct(row.GoldenSDC),
			fmt.Sprintf("%s ±%.2f%%, %s sites", pct(row.MCSDC), 100*row.MCCIWidth/2, pct(row.MCSiteCoverage)),
			fmt.Sprintf("%s, MAE %.4f, 100%% sites", pct(row.BoundarySDC), row.BoundaryMAE),
			fmt.Sprintf("%.0fx", row.Reduction),
		})
	}
	var b strings.Builder
	b.WriteString("Baseline: Monte Carlo campaign vs fault tolerance boundary at equal budgets\n")
	b.WriteString(table([]string{"bench", "budget", "golden SDC", "Monte Carlo", "boundary", "vs exhaustive"}, rows))
	b.WriteString("\nMonte Carlo estimates one number (the overall SDC ratio) and leaves most sites\n")
	b.WriteString("unvisited; the boundary predicts every site's SDC ratio at the same cost.\n")
	return b.String()
}
