package experiments

import (
	"fmt"

	"ftb/internal/boundary"
)

// Table1Row compares the known true SDC ratio with the SDC ratio
// approximated from the fault tolerance boundary constructed by
// exhaustive search (paper Table 1).
type Table1Row struct {
	Name      string
	GoldenSDC float64 // true SDC ratio from the exhaustive campaign
	ApproxSDC float64 // SDC ratio predicted from the searched boundary
	Size      int     // sample-space size (sites × bits)
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the §4.1 experiment: build the boundary from an exhaustive
// campaign and check that predicting through it recovers the campaign's
// overall SDC ratio.
func Table1(s Scale) (*Table1Result, error) {
	s = s.normalized()
	defer s.section("table1")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for _, b := range benches {
		bd, err := b.an.ExhaustiveBoundary(b.gt)
		if err != nil {
			return nil, err
		}
		pred, err := boundary.NewPredictor(bd, b.an.Golden(), nil)
		if err != nil {
			return nil, err
		}
		overall := b.gt.Overall()
		res.Rows = append(res.Rows, Table1Row{
			Name:      b.name,
			GoldenSDC: overall.SDCRatio(),
			ApproxSDC: pred.OverallSDCRatio(b.gt.BitsN),
			Size:      b.an.SampleSpace(),
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, pct(row.GoldenSDC), pct(row.ApproxSDC), fmt.Sprint(row.Size),
		})
	}
	return "Table 1: golden vs boundary-approximated SDC ratio (exhaustive campaign)\n" +
		table([]string{"Name", "Golden_SDC", "Approx_SDC", "Size"}, rows)
}

// MaxAbsGap returns the largest |golden − approx| over the rows; the
// paper's point is that this gap is small.
func (r *Table1Result) MaxAbsGap() float64 {
	var m float64
	for _, row := range r.Rows {
		d := row.GoldenSDC - row.ApproxSDC
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
