package experiments

import (
	"strings"

	"ftb"
	"ftb/internal/stats"
)

// Table3Row summarizes the adaptive progressive sampling method on one
// benchmark (paper Table 3): the golden SDC ratio, the sample budget the
// method actually spent, and its predicted SDC ratio.
type Table3Row struct {
	Name       string
	GoldenSDC  float64
	SampleFrac stats.Summary
	PredSDC    stats.Summary
	Rounds     stats.Summary
}

// Table3Result is the full table.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the §4.5 experiment: progressive sampling with 0.1% rounds
// and the 95% stop criterion, biased by per-site information, repeated
// Scale.Trials times.
func Table3(s Scale) (*Table3Result, error) {
	s = s.normalized()
	defer s.section("table3")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for _, b := range benches {
		var fracs, preds, rounds []float64
		for trial := 0; trial < s.Trials; trial++ {
			r, roundStats, err := b.an.Progressive(ftb.ProgressiveOptions{
				RoundFrac:         0.001,
				StopNonMaskedFrac: 0.95,
				Adaptive:          true,
				Filter:            false,
				Seed:              trialSeed(s.Seed, trial),
			})
			if err != nil {
				return nil, err
			}
			fracs = append(fracs, r.SampleFraction())
			preds = append(preds, r.PredictedSDCRatio())
			rounds = append(rounds, float64(len(roundStats)))
		}
		overall := b.gt.Overall()
		res.Rows = append(res.Rows, Table3Row{
			Name:       b.name,
			GoldenSDC:  overall.SDCRatio(),
			SampleFrac: stats.Summarize(fracs),
			PredSDC:    stats.Summarize(preds),
			Rounds:     stats.Summarize(rounds),
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table3Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			pct(row.GoldenSDC),
			row.SampleFrac.PctString(),
			row.PredSDC.PctString(),
			row.Rounds.String(),
		})
	}
	var b strings.Builder
	b.WriteString("Table 3: adaptive progressive sampling (0.1% rounds, 95% stop)\n")
	b.WriteString(table([]string{"Name", "SDC Ratio", "Sample Size", "Predict SDC Ratio", "Rounds"}, rows))
	return b.String()
}
