package experiments

import (
	"strconv"
	"strings"
)

// MonotonicRow is one kernel's non-monotonicity measurement (§5).
type MonotonicRow struct {
	Name         string
	Sites        int
	NonMonotonic int
}

// Fraction returns the non-monotonic site fraction.
func (r MonotonicRow) Fraction() float64 {
	if r.Sites == 0 {
		return 0
	}
	return float64(r.NonMonotonic) / float64(r.Sites)
}

// MonotonicResult is the §5 ablation across all kernels.
type MonotonicResult struct {
	Rows []MonotonicRow
}

// Monotonicity runs the §5 ablation: exhaustively measure the fraction of
// sites with a non-monotonic error response for every kernel. The paper
// proves stencil and matvec have monotonic (linear) error functions;
// CG/LU/FFT exhibit the ~10% non-monotonic tails of §4.1.
func Monotonicity(s Scale) (*MonotonicResult, error) {
	s = s.normalized()
	defer s.section("monotonicity")()
	names := append([]string{}, Benchmarks...)
	names = append(names, "stencil", "stencil32", "matvec", "spmv", "matmul", "cholesky", "heat3d", "gmres", "multigrid")
	benches, err := setup(names, s)
	if err != nil {
		return nil, err
	}
	res := &MonotonicResult{}
	for _, b := range benches {
		nm, err := b.an.NonMonotonicSites(b.gt)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MonotonicRow{
			Name:         b.name,
			Sites:        b.an.Sites(),
			NonMonotonic: nm,
		})
	}
	return res, nil
}

// Render prints the ablation table.
func (r *MonotonicResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			strconv.Itoa(row.Sites),
			strconv.Itoa(row.NonMonotonic),
			pct(row.Fraction()),
		})
	}
	var b strings.Builder
	b.WriteString("§5 ablation: non-monotonic error response by kernel\n")
	b.WriteString(table([]string{"Kernel", "Sites", "Non-monotonic", "Fraction"}, rows))
	return b.String()
}
