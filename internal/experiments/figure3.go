package experiments

import (
	"fmt"
	"strings"

	"ftb/internal/boundary"
	"ftb/internal/metrics"
	"ftb/internal/stats"
	"ftb/internal/textplot"
)

// Figure3Bench is one benchmark's ΔSDC distribution for the
// exhaustive-search boundary (paper Figure 3).
type Figure3Bench struct {
	Name string
	// Delta is per-site ΔSDC = golden − approx SDC ratio.
	Delta []float64
	// Hist bins Delta over [-1, 1].
	Hist *stats.Histogram
	// ExactSites counts sites with ΔSDC == 0.
	ExactSites int
	// NonMonotonic counts sites with non-monotonic error response — the
	// cause of the non-zero ΔSDC tail (§4.1: 10.7% in LU, 9.3% in CG).
	NonMonotonic int
	Sites        int
}

// Figure3Result is the full figure.
type Figure3Result struct {
	Benches []Figure3Bench
}

// Figure3 runs the §4.1 ΔSDC analysis of the exhaustive-search boundary.
func Figure3(s Scale) (*Figure3Result, error) {
	s = s.normalized()
	defer s.section("figure3")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	for _, b := range benches {
		bd, err := b.an.ExhaustiveBoundary(b.gt)
		if err != nil {
			return nil, err
		}
		pred, err := boundary.NewPredictor(bd, b.an.Golden(), nil)
		if err != nil {
			return nil, err
		}
		delta := metrics.DeltaSDC(pred, b.gt)
		exact := 0
		for _, d := range delta {
			if d == 0 {
				exact++
			}
		}
		nm, err := b.an.NonMonotonicSites(b.gt)
		if err != nil {
			return nil, err
		}
		res.Benches = append(res.Benches, Figure3Bench{
			Name:         b.name,
			Delta:        delta,
			Hist:         metrics.DeltaSDCHistogram(delta, 41),
			ExactSites:   exact,
			NonMonotonic: nm,
			Sites:        len(delta),
		})
	}
	return res, nil
}

// Render prints one histogram per benchmark.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: ΔSDC = golden − approx per-site SDC ratio (exhaustive boundary)\n\n")
	for _, bench := range r.Benches {
		fmt.Fprintf(&b, "%s: %d sites, %d exact (%.1f%%), %d non-monotonic (%.1f%%)\n",
			bench.Name, bench.Sites, bench.ExactSites,
			100*float64(bench.ExactSites)/float64(bench.Sites),
			bench.NonMonotonic,
			100*float64(bench.NonMonotonic)/float64(bench.Sites))
		b.WriteString(textplot.Hist("", bench.Hist, 40))
		b.WriteByte('\n')
	}
	return b.String()
}
