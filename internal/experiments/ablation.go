package experiments

import (
	"fmt"
	"strings"

	"ftb"
	"ftb/internal/stats"
)

// AblationRow scores one sampling strategy on one benchmark at a matched
// injection budget.
type AblationRow struct {
	Name      string
	Strategy  string
	Budget    int
	Precision stats.Summary
	Recall    stats.Summary
}

// AblationResult is the sampling-strategy ablation: the design choices
// DESIGN.md calls out (uniform vs Relyzer-style grouped selection vs the
// progressive loop, with and without the 1/S_i bias) compared head to
// head.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation fixes each benchmark's budget to whatever progressive adaptive
// sampling spends, then gives the same budget to one-shot uniform,
// one-shot grouped, and progressive uniform selection, scoring all four
// against the exhaustive ground truth.
func Ablation(s Scale) (*AblationResult, error) {
	s = s.normalized()
	defer s.section("ablation")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}
	for _, b := range benches {
		k, err := ftb.NewKernel(b.name, s.Size)
		if err != nil {
			return nil, err
		}
		type trialScores struct{ prec, rec []float64 }
		scores := map[string]*trialScores{}
		add := func(strategy string, pr ftb.PR) {
			sc := scores[strategy]
			if sc == nil {
				sc = &trialScores{}
				scores[strategy] = sc
			}
			sc.prec = append(sc.prec, pr.Precision)
			sc.rec = append(sc.rec, pr.Recall)
		}
		budget := 0
		for trial := 0; trial < s.Trials; trial++ {
			seed := trialSeed(s.Seed, trial)

			adaptive, _, err := b.an.Progressive(ftb.ProgressiveOptions{
				RoundFrac: 0.001, Adaptive: true, Filter: false, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			budget = adaptive.Samples()
			add("progressive-adaptive", adaptive.Evaluate(b.gt))

			uniformProg, _, err := b.an.Progressive(ftb.ProgressiveOptions{
				RoundFrac: 0.001, Adaptive: false, Filter: false, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			add("progressive-uniform", uniformProg.Evaluate(b.gt))

			oneShot, err := b.an.InferBoundary(ftb.InferOptions{
				Samples: budget, Filter: false, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			add("one-shot-uniform", oneShot.Evaluate(b.gt))

			grouped, err := b.an.InferFromPairs(b.an.GroupedPairs(k.Phases(), budget, seed), false)
			if err != nil {
				return nil, err
			}
			add("one-shot-grouped", grouped.Evaluate(b.gt))
		}
		for _, strategy := range []string{
			"one-shot-uniform", "one-shot-grouped",
			"progressive-uniform", "progressive-adaptive",
		} {
			sc := scores[strategy]
			res.Rows = append(res.Rows, AblationRow{
				Name:      b.name,
				Strategy:  strategy,
				Budget:    budget,
				Precision: stats.Summarize(sc.prec),
				Recall:    stats.Summarize(sc.rec),
			})
		}
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, row.Strategy, fmt.Sprint(row.Budget),
			row.Precision.PctString(), row.Recall.PctString(),
		})
	}
	var b strings.Builder
	b.WriteString("Ablation: sampling strategies at matched budgets\n")
	b.WriteString(table([]string{"bench", "strategy", "budget", "precision", "recall"}, rows))
	return b.String()
}
