// Package experiments reproduces every table and figure of the paper's
// evaluation section (§4) on this repository's substrate:
//
//	Table 1  — golden vs boundary-approximated SDC ratio (exhaustive search)
//	Figure 3 — ΔSDC histograms of the exhaustive-search boundary
//	Figure 4 — per-site-group SDC profiles @1% sampling, potential impact,
//	           and progressive-sampling profiles
//	Table 2  — precision/recall/uncertainty @1% sampling over 10 trials
//	Figure 5 — precision & recall vs sample size, with/without filter
//	Table 3  — adaptive progressive sampling budgets and predictions
//	Table 4  — CG input-size scaling with a fixed 1000-sample budget
//	§5       — monotonicity ablation across kernels
//
// Each experiment accepts a scale preset so tests run in milliseconds
// while the CLI reproduces paper-shaped runs. Absolute values differ from
// the paper (different substrate; see DESIGN.md §2); the comparisons in
// EXPERIMENTS.md track the paper's qualitative shape.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"ftb"
)

// Benchmarks is the paper's evaluation set, in presentation order.
var Benchmarks = []string{"cg", "lu", "fft"}

// Scale selects experiment sizing and execution plumbing.
type Scale struct {
	// Size is the kernel size preset (ftb.SizeTest … ftb.SizeLarge).
	Size string
	// Trials is the number of repeated randomized trials (the paper uses
	// 10).
	Trials int
	// Seed drives all sampling.
	Seed uint64
	// Context, when non-nil, cancels the experiment's campaigns: the
	// experiment returns the context's error instead of running to
	// completion.
	Context context.Context
	// Observer, when non-nil, receives progress events from every
	// campaign the experiment runs. Callbacks must be cheap and
	// non-blocking.
	Observer ftb.Observer
	// RunOptions are applied to every campaign the experiment runs, after
	// Context and Observer (so an explicit option wins over the fields).
	RunOptions []ftb.RunOption
	// PropTrace, when non-nil, records a propagation trajectory for every
	// classification experiment (sampling and exhaustive alike) into the
	// sink. Tracing switches campaigns to diff mode, roughly doubling the
	// per-experiment cost.
	PropTrace ftb.TrajectorySink
	// Collector, when non-nil, receives campaign metrics from every
	// campaign the experiment runs, and each experiment's work is
	// attributed to a telemetry section named after it ("table1",
	// "figure3", ...), so a snapshot breaks the harness down per
	// table/figure.
	Collector *ftb.Collector
}

// ScaleTest is the unit-test scale: tiny kernels, few trials.
var ScaleTest = Scale{Size: ftb.SizeTest, Trials: 3, Seed: 1}

// ScaleSmall finishes each experiment in a few seconds.
var ScaleSmall = Scale{Size: ftb.SizeSmall, Trials: 5, Seed: 1}

// ScalePaper mirrors the paper's benchmark shapes and 10-trial protocol.
var ScalePaper = Scale{Size: ftb.SizePaper, Trials: 10, Seed: 1}

func (s Scale) normalized() Scale {
	if s.Size == "" {
		s.Size = ftb.SizePaper
	}
	if s.Trials <= 0 {
		s.Trials = 10
	}
	return s
}

// bench bundles one benchmark's analysis and exhaustive ground truth —
// the shared setup cost of most experiments.
type bench struct {
	name string
	an   *ftb.Analysis
	gt   *ftb.GroundTruth
}

// gtCache memoizes exhaustive campaigns by (kernel, size): every
// experiment evaluates against the same ground truth, and at paper scale
// each campaign costs tens of seconds, so "exp all" would otherwise repeat
// them per table/figure. Campaigns are deterministic, so caching is safe.
var gtCache = struct {
	sync.Mutex
	m map[string]bench
}{m: make(map[string]bench)}

// setup builds analyses and ground truths for the given kernels, reusing
// cached exhaustive campaigns. The returned analyses carry the scale's
// context and observer; the cache stores the plumbing-free originals so a
// cancelled context from one caller never leaks into another.
func setup(names []string, s Scale) ([]bench, error) {
	out := make([]bench, 0, len(names))
	for _, name := range names {
		key := name + "/" + s.Size
		gtCache.Lock()
		b, ok := gtCache.m[key]
		gtCache.Unlock()
		if !ok {
			an, err := ftb.NewKernelAnalysis(name, s.Size)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", name, err)
			}
			gt, err := withScale(an, s).Exhaustive()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s exhaustive: %w", name, err)
			}
			b = bench{name: name, an: an, gt: gt}
			gtCache.Lock()
			gtCache.m[key] = b
			gtCache.Unlock()
		}
		b.an = withScale(b.an, s)
		out = append(out, b)
	}
	return out, nil
}

// withScale attaches the scale's execution plumbing — cancellation
// context, progress observer, extra RunOptions, and metrics collector —
// to an analysis (returning a derived copy).
func withScale(an *ftb.Analysis, s Scale) *ftb.Analysis {
	var opts []ftb.RunOption
	if s.Context != nil {
		opts = append(opts, ftb.WithContext(s.Context))
	}
	if s.Observer != nil {
		opts = append(opts, ftb.WithObserver(s.Observer))
	}
	if s.PropTrace != nil {
		opts = append(opts, ftb.WithPropTrace(s.PropTrace))
	}
	opts = append(opts, s.RunOptions...)
	if s.Collector != nil {
		opts = append(opts, ftb.WithCollector(s.Collector))
	}
	if len(opts) == 0 {
		return an
	}
	return an.With(opts...)
}

// section opens the named telemetry section when the scale carries a
// collector and returns its closer (a no-op closer otherwise). Each
// experiment defers it around its whole run, so a snapshot attributes
// wall-clock, campaigns, and experiments to the table or figure that
// spent them.
func (s Scale) section(name string) func() {
	if s.Collector == nil {
		return func() {}
	}
	return s.Collector.StartSection(name)
}

// trialSeed derives a per-trial seed from the scale seed.
func trialSeed(base uint64, trial int) uint64 {
	return base*0x9e3779b97f4a7c15 + uint64(trial)*0x2545f4914f6cdd1d + 1
}

// table writes rows as an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
