package experiments

import (
	"fmt"
	"strings"

	"ftb"
	"ftb/internal/metrics"
	"ftb/internal/textplot"
)

// Figure4Bench is one benchmark's three Figure 4 rows.
type Figure4Bench struct {
	Name      string
	GroupSize int
	// Row 1: true vs predicted grouped SDC ratio at the uniform sampling
	// rate (1% in the paper).
	Uniform metrics.Grouped
	// Row 2: grouped potential-impact profile of the same run.
	Impact []float64
	// Row 3: true vs predicted grouped SDC ratio after progressive
	// adaptive sampling.
	Progressive metrics.Grouped
	// UniformFrac and ProgressiveFrac are the sample budgets spent.
	UniformFrac     float64
	ProgressiveFrac float64
}

// Figure4Result is the full figure.
type Figure4Result struct {
	Benches []Figure4Bench
}

// Figure4 runs the §4.2/§4.5 per-site profile experiment: row 1 predicts
// every site's SDC ratio from a 1% uniform boundary; row 2 explains the
// mispredicted regions through the potential-impact (information) profile;
// row 3 repairs them with progressive adaptive sampling.
func Figure4(s Scale) (*Figure4Result, error) {
	s = s.normalized()
	defer s.section("figure4")()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{}
	for _, b := range benches {
		groups := 64
		size := (b.an.Sites() + groups - 1) / groups
		if size < 1 {
			size = 1
		}

		uni, err := b.an.InferBoundary(ftb.InferOptions{
			SampleFrac: 0.01,
			Filter:     false,
			Seed:       trialSeed(s.Seed, 0),
		})
		if err != nil {
			return nil, err
		}
		uniProfile := uni.Profile(b.gt)

		prog, _, err := b.an.Progressive(ftb.ProgressiveOptions{
			RoundFrac: 0.001,
			Adaptive:  true,
			Filter:    false,
			Seed:      trialSeed(s.Seed, 1),
		})
		if err != nil {
			return nil, err
		}
		progProfile := prog.Profile(b.gt)

		res.Benches = append(res.Benches, Figure4Bench{
			Name:            b.name,
			GroupSize:       size,
			Uniform:         uniProfile.Group(size),
			Impact:          uniProfile.Group(size).Impact,
			Progressive:     progProfile.Group(size),
			UniformFrac:     uni.SampleFraction(),
			ProgressiveFrac: prog.SampleFraction(),
		})
	}
	return res, nil
}

// Render prints the three rows per benchmark as ASCII charts.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: per-site-group SDC profiles\n\n")
	for _, bench := range r.Benches {
		fmt.Fprintf(&b, "--- %s (group size %d) ---\n", bench.Name, bench.GroupSize)
		b.WriteString(textplot.Chart(
			fmt.Sprintf("row 1: true vs predicted SDC ratio @ %s uniform", pct(bench.UniformFrac)),
			72, 12,
			textplot.Series{Name: "true", Marker: 'o', Ys: bench.Uniform.TrueSDC},
			textplot.Series{Name: "pred", Marker: '*', Ys: bench.Uniform.PredSDC},
		))
		b.WriteString(textplot.Chart(
			"row 2: potential impact (significant-error information per group)",
			72, 8,
			textplot.Series{Name: "impact", Marker: '#', Ys: bench.Impact},
		))
		b.WriteString(textplot.Chart(
			fmt.Sprintf("row 3: true vs predicted SDC ratio, progressive (%s samples)", pct(bench.ProgressiveFrac)),
			72, 12,
			textplot.Series{Name: "true", Marker: 'o', Ys: bench.Progressive.TrueSDC},
			textplot.Series{Name: "pred", Marker: '*', Ys: bench.Progressive.PredSDC},
		))
		fmt.Fprintf(&b, "row1 MAE %.4f -> row3 MAE %.4f\n\n",
			bench.Uniform.MeanAbsError(), bench.Progressive.MeanAbsError())
	}
	return b.String()
}
