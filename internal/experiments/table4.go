package experiments

import (
	"fmt"
	"strings"

	"ftb"
	"ftb/internal/kernels"
	"ftb/internal/linalg"
	"ftb/internal/stats"
)

// Table4Row is one CG input size in the §4.6 scaling study.
type Table4Row struct {
	Input       string
	Sites       int
	Space       int
	Samples     int
	GoldenSDC   float64
	PredSDC     stats.Summary
	Precision   stats.Summary
	Uncertainty stats.Summary
	Recall      stats.Summary
}

// Table4Result is the full table.
type Table4Result struct {
	Rows []Table4Row
}

// table4Shapes maps a scale preset to the two CG grid shapes compared.
func table4Shapes(size string) [2]struct{ n, iters int } {
	switch size {
	case ftb.SizeTest:
		return [2]struct{ n, iters int }{{2, 3}, {3, 4}}
	case ftb.SizeSmall:
		return [2]struct{ n, iters int }{{3, 5}, {4, 6}}
	case ftb.SizeLarge:
		return [2]struct{ n, iters int }{{6, 10}, {10, 15}}
	default: // paper
		return [2]struct{ n, iters int }{{4, 8}, {6, 10}}
	}
}

// Table4 runs the §4.6 scaling experiment: approximate the boundary of CG
// at two input sizes with the same fixed sample budget (the paper uses
// 1000 samples for a 20×20 and a 100×100 matrix) and verify that quality
// holds as the dynamic-instruction count grows.
func Table4(s Scale) (*Table4Result, error) {
	s = s.normalized()
	defer s.section("table4")()
	shapes := table4Shapes(s.Size)
	res := &Table4Result{}
	for _, shape := range shapes {
		a := linalg.Poisson3D(shape.n, shape.n, shape.n)
		rhs := linalg.NewVector(a.N)
		for i := range rhs {
			rhs[i] = 1.0 / float64(i+1)
		}
		n, iters := shape.n, shape.iters
		factory := func() ftb.Program {
			aa := linalg.Poisson3D(n, n, n)
			b := linalg.NewVector(aa.N)
			for i := range b {
				b[i] = 1.0 / float64(i+1)
			}
			k, err := kernels.NewCG(kernels.CGConfig{A: aa, B: b, Iters: iters, Tolerance: 1e-4})
			if err != nil {
				panic(err)
			}
			return k
		}
		an, err := ftb.NewAnalysis(factory, 1e-4, ftb.Options{})
		if err != nil {
			return nil, err
		}
		an = withScale(an, s)
		gt, err := an.Exhaustive()
		if err != nil {
			return nil, err
		}
		budget := 1000
		if max := an.SampleSpace() / 4; budget > max {
			budget = max
		}
		var preds, precs, uncs, recs []float64
		for trial := 0; trial < s.Trials; trial++ {
			r, err := an.InferBoundary(ftb.InferOptions{
				Samples: budget,
				Filter:  false,
				Seed:    trialSeed(s.Seed, trial),
			})
			if err != nil {
				return nil, err
			}
			pr := r.Evaluate(gt)
			preds = append(preds, r.PredictedSDCRatio())
			precs = append(precs, pr.Precision)
			uncs = append(uncs, pr.Uncertainty)
			recs = append(recs, pr.Recall)
		}
		overall := gt.Overall()
		res.Rows = append(res.Rows, Table4Row{
			Input:       fmt.Sprintf("%dx%dx%d grid, %d iters", shape.n, shape.n, shape.n, shape.iters),
			Sites:       an.Sites(),
			Space:       an.SampleSpace(),
			Samples:     budget,
			GoldenSDC:   overall.SDCRatio(),
			PredSDC:     stats.Summarize(preds),
			Precision:   stats.Summarize(precs),
			Uncertainty: stats.Summarize(uncs),
			Recall:      stats.Summarize(recs),
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Input,
			pct(row.GoldenSDC),
			row.PredSDC.PctString(),
			row.Precision.PctString(),
			row.Uncertainty.PctString(),
			row.Recall.PctString(),
			fmt.Sprintf("%d (%.3g%% of %d)", row.Samples, 100*float64(row.Samples)/float64(row.Space), row.Space),
		})
	}
	var b strings.Builder
	b.WriteString("Table 4: CG input-size scaling with a fixed sample budget\n")
	b.WriteString(table([]string{"Input", "SDC ratio", "predict SDC", "precision", "uncertainty", "recall", "samples"}, rows))
	return b.String()
}
