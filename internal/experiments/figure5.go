package experiments

import (
	"fmt"
	"strings"

	"ftb"
	"ftb/internal/stats"
	"ftb/internal/textplot"
)

// Figure5Fracs is the paper's sample-size sweep: 0.1%, 0.5%, 1%, 5%, 10%,
// 50% of the sample space.
var Figure5Fracs = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5}

// Figure5Point is one (benchmark, fraction, filter) measurement.
type Figure5Point struct {
	Frac      float64
	Precision stats.Summary
	Recall    stats.Summary
}

// Figure5Bench is one benchmark's two sweeps.
type Figure5Bench struct {
	Name          string
	WithoutFilter []Figure5Point
	WithFilter    []Figure5Point
}

// Figure5Result is the full figure.
type Figure5Result struct {
	Fracs   []float64
	Benches []Figure5Bench
}

// Figure5 runs the §4.4 sample-size sweep: boundary quality as a function
// of the uniform sampling rate, with the top row lacking and the bottom
// row using the §3.5 filter operation.
func Figure5(s Scale) (*Figure5Result, error) {
	defer s.section("figure5")()
	return figure5At(s, Figure5Fracs)
}

func figure5At(s Scale, fracs []float64) (*Figure5Result, error) {
	s = s.normalized()
	benches, err := setup(Benchmarks, s)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Fracs: fracs}
	for _, b := range benches {
		fb := Figure5Bench{Name: b.name}
		for _, filter := range []bool{false, true} {
			points := make([]Figure5Point, 0, len(fracs))
			for fi, frac := range fracs {
				var prec, rec []float64
				for trial := 0; trial < s.Trials; trial++ {
					r, err := b.an.InferBoundary(ftb.InferOptions{
						SampleFrac: frac,
						Filter:     filter,
						Seed:       trialSeed(s.Seed, trial*len(fracs)+fi),
					})
					if err != nil {
						return nil, err
					}
					pr := r.Evaluate(b.gt)
					prec = append(prec, pr.Precision)
					rec = append(rec, pr.Recall)
				}
				points = append(points, Figure5Point{
					Frac:      frac,
					Precision: stats.Summarize(prec),
					Recall:    stats.Summarize(rec),
				})
			}
			if filter {
				fb.WithFilter = points
			} else {
				fb.WithoutFilter = points
			}
		}
		res.Benches = append(res.Benches, fb)
	}
	return res, nil
}

// Render prints the two sweeps per benchmark.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: precision & recall vs sample size\n\n")
	for _, bench := range r.Benches {
		for _, row := range []struct {
			label  string
			points []Figure5Point
		}{
			{"without filter", bench.WithoutFilter},
			{"with filter", bench.WithFilter},
		} {
			prec := make([]float64, len(row.points))
			rec := make([]float64, len(row.points))
			for i, p := range row.points {
				prec[i] = p.Precision.Mean
				rec[i] = p.Recall.Mean
			}
			b.WriteString(textplot.Chart(
				fmt.Sprintf("%s, %s (x: sample frac %v)", bench.Name, row.label, r.Fracs),
				60, 10,
				textplot.Series{Name: "precision", Marker: '*', Ys: prec},
				textplot.Series{Name: "recall", Marker: 'o', Ys: rec},
			))
		}
		b.WriteByte('\n')
	}
	b.WriteString(r.renderTable())
	return b.String()
}

func (r *Figure5Result) renderTable() string {
	header := []string{"bench", "filter", "frac", "precision", "recall"}
	var rows [][]string
	for _, bench := range r.Benches {
		for _, row := range []struct {
			label  string
			points []Figure5Point
		}{
			{"off", bench.WithoutFilter},
			{"on", bench.WithFilter},
		} {
			for _, p := range row.points {
				rows = append(rows, []string{
					bench.Name, row.label, pct(p.Frac),
					p.Precision.PctString(), p.Recall.PctString(),
				})
			}
		}
	}
	return table(header, rows)
}
