// Errorprop: watch a single injected error propagate (the paper's
// Figure 2).
//
// One bit flip is injected into the stencil kernel mid-run; the trace
// layer streams the |golden − corrupted| deviation of every subsequent
// dynamic instruction. The same propagation curve is what Algorithm 1
// aggregates into the fault tolerance boundary: every point on it is a
// lower bound on the error that instruction can tolerate.
//
//	go run ./examples/errorprop
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ftb"
)

// curveSink records the per-site deviation of one injected run.
type curveSink struct {
	deltas []float64
}

func (s *curveSink) Observe(site int, golden, delta float64) {
	s.deltas = append(s.deltas, delta)
}

func main() {
	k, err := ftb.NewKernel("stencil", ftb.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := ftb.Golden(k)
	if err != nil {
		log.Fatal(err)
	}

	site := golden.Sites() / 4
	const bit = 40 // a mid-mantissa flip: visible but survivable
	fmt.Printf("injecting bit %d flip at dynamic instruction %d of %d (%s)\n\n",
		bit, site, golden.Sites(), k.Name())

	sink := &curveSink{}
	var ctx ftb.Ctx
	res, err := ftb.RunInjectDiff(&ctx, k, golden, site, bit, sink)
	if err != nil {
		log.Fatal(err)
	}
	if res.Crashed {
		log.Fatalf("run crashed at site %d; pick a smaller bit", res.CrashAt)
	}

	outErr := 0.0
	for i := range res.Output {
		if d := math.Abs(res.Output[i] - golden.Output[i]); d > outErr {
			outErr = d
		}
	}
	kind := "masked"
	if outErr > k.Tolerance() {
		kind = "sdc"
	}
	fmt.Printf("injected error %.3g  ->  output error %.3g  ->  %s (tolerance %g)\n\n",
		res.InjErr, outErr, kind, k.Tolerance())

	// Render the propagation curve: max |Δ| per bucket of consecutive
	// dynamic instructions, on a log scale.
	const cols = 64
	bucket := (len(sink.deltas) + cols - 1) / cols
	fmt.Printf("per-instruction deviation from the golden run (log scale, %d sites/column):\n",
		bucket)
	var rows [8]string
	maxs := make([]float64, 0, cols)
	for lo := 0; lo < len(sink.deltas); lo += bucket {
		hi := lo + bucket
		if hi > len(sink.deltas) {
			hi = len(sink.deltas)
		}
		m := 0.0
		for _, d := range sink.deltas[lo:hi] {
			if d > m {
				m = d
			}
		}
		maxs = append(maxs, m)
	}
	for r := 0; r < len(rows); r++ {
		var b strings.Builder
		// Row r covers magnitudes >= 10^(-2r) scale steps.
		threshold := res.InjErr * math.Pow(10, float64(-2*r))
		for _, m := range maxs {
			if m >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("  >=%8.1e |%s|\n", threshold, b.String())
	}
	fmt.Printf("               %s^ injection at column %d\n",
		strings.Repeat(" ", site/bucket), site/bucket)
	if kind == "masked" {
		fmt.Println("\nthe curve is Algorithm 1's evidence: every instruction the error")
		fmt.Println("visited can tolerate at least that much perturbation, because this")
		fmt.Println("run still ended within tolerance.")
	} else {
		fmt.Println("\nthis run exceeded the tolerance, so Algorithm 1 would NOT use its")
		fmt.Println("propagation data; with the filter operation the injected error also")
		fmt.Println("caps future threshold estimates at this site.")
	}
}
