// Protect: use the boundary to place selective protection.
//
// Full instruction duplication or triple modular redundancy is too
// expensive for HPC codes (paper §1); the practical alternative is to
// protect only the vulnerable instructions. This example ranks dynamic
// instructions by their boundary-predicted SDC contribution, "protects"
// increasing fractions of them (a protected instruction's faults are
// assumed detected/corrected by duplication), and measures the residual
// SDC ratio against the exhaustive ground truth: a small protection
// budget eliminates most silent corruption.
//
//	go run ./examples/protect
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"ftb"
)

func main() {
	an, err := ftb.NewKernelAnalysis("cg", ftb.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}

	// Infer the boundary from a cheap 2% sample...
	res, err := an.InferBoundary(ftb.InferOptions{SampleFrac: 0.02, Filter: true, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	// ...and get the ground truth to score the protection choices
	// honestly (in production you would not have this).
	gt, err := an.Exhaustive()
	if err != nil {
		log.Fatal(err)
	}
	overall := gt.Overall()
	fmt.Printf("cg: %d sites, unprotected SDC ratio %.2f%%\n\n",
		an.Sites(), 100*overall.SDCRatio())

	// Rank sites by predicted SDC contribution.
	pred := res.Predictor()
	order := make([]int, an.Sites())
	score := make([]float64, an.Sites())
	for site := range order {
		order[site] = site
		score[site] = pred.SiteSDCRatio(site, an.Bits())
	}
	sort.SliceStable(order, func(i, j int) bool { return score[order[i]] > score[order[j]] })

	fmt.Printf("%-10s %14s %16s\n", "protected", "residual SDC", "SDC eliminated")
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5} {
		nProtect := int(frac * float64(an.Sites()))
		protected := make([]bool, an.Sites())
		for _, site := range order[:nProtect] {
			protected[site] = true
		}
		// Residual SDC: ground-truth SDC outcomes at unprotected sites.
		var sdc, total int
		for site := 0; site < an.Sites(); site++ {
			for bit := 0; bit < an.Bits(); bit++ {
				total++
				if !protected[site] && gt.At(site, uint8(bit)) == ftb.SDC {
					sdc++
				}
			}
		}
		residual := float64(sdc) / float64(total)
		eliminated := 1 - residual/overall.SDCRatio()
		bar := strings.Repeat("#", int(eliminated*30+0.5))
		fmt.Printf("%9.0f%% %13.2f%% %15.1f%% %s\n",
			100*frac, 100*residual, 100*eliminated, bar)
	}
	fmt.Printf("\n(ranking derived from %d samples — %.2f%% of the space)\n",
		res.Samples(), 100*res.SampleFraction())
}
