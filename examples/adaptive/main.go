// Adaptive: watch the §3.4 progressive sampling loop converge.
//
// Each round draws 0.5% of the remaining sample space (biased toward
// dynamic instructions with little injection/propagation information),
// absorbs the results into the boundary, and uses the boundary to discard
// untested injections it already predicts masked. The loop stops when a
// round is ≥95% non-masked — the boundary has soaked up the maskable part
// of the space.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"ftb"
)

func main() {
	an, err := ftb.NewKernelAnalysis("cg", ftb.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}
	space := an.SampleSpace()
	fmt.Printf("cg sample space: %d experiments\n\n", space)

	res, rounds, err := an.Progressive(ftb.ProgressiveOptions{
		RoundFrac:         0.005,
		StopNonMaskedFrac: 0.95,
		Adaptive:          true,
		Filter:            true,
		Seed:              3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %12s %9s %9s %6s %7s\n", "round", "space left", "samples", "masked", "sdc", "crash")
	for i, r := range rounds {
		fmt.Printf("%-6d %12d %9d %9d %6d %7d\n",
			i, r.Candidates, r.Samples,
			r.Counts[ftb.Masked], r.Counts[ftb.SDC], r.Counts[ftb.Crash])
	}

	fmt.Printf("\nconverged after %d rounds and %d samples (%.2f%% of the space)\n",
		len(rounds), res.Samples(), 100*res.SampleFraction())
	fmt.Printf("predicted SDC ratio: %.2f%%   uncertainty: %.2f%%\n",
		100*res.PredictedSDCRatio(), 100*res.Uncertainty())
	fmt.Printf("an exhaustive campaign would have needed %d runs — %.0fx more\n",
		space, float64(space)/float64(res.Samples()))
}
