// Vulnmap: build a per-phase vulnerability map of the blocked LU kernel.
//
// The boundary method gives a full-resolution per-instruction SDC
// profile; aggregating it over the kernel's algorithmic phases shows
// *where* a program is fragile — the information a selective-protection
// scheme needs (paper §1: "a small fraction of static instructions
// contribute to the majority of SDC events").
//
//	go run ./examples/vulnmap
package main

import (
	"fmt"
	"log"
	"strings"

	"ftb"
)

func main() {
	const name, size = "lu", ftb.SizeSmall

	k, err := ftb.NewKernel(name, size)
	if err != nil {
		log.Fatal(err)
	}
	an, err := ftb.NewKernelAnalysis(name, size)
	if err != nil {
		log.Fatal(err)
	}

	// A 5% sample is plenty for a phase-level map.
	res, err := an.InferBoundary(ftb.InferOptions{SampleFrac: 0.05, Filter: true, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): %d sites, boundary from %d samples, uncertainty %.1f%%\n\n",
		name, size, an.Sites(), res.Samples(), 100*res.Uncertainty())

	pred := res.Predictor()
	fmt.Printf("%-12s %10s %12s  %s\n", "phase", "sites", "pred. SDC", "vulnerability")
	for _, ph := range k.Phases() {
		var sdc float64
		for site := ph.Start; site < ph.End; site++ {
			sdc += pred.SiteSDCRatio(site, an.Bits())
		}
		sdc /= float64(ph.End - ph.Start)
		bar := strings.Repeat("#", int(sdc*40+0.5))
		fmt.Printf("%-12s %10d %11.2f%%  %s\n", ph.Name, ph.End-ph.Start, 100*sdc, bar)
	}

	// The most vulnerable individual instructions (highest predicted SDC,
	// i.e. lowest tolerance relative to the errors bit flips introduce).
	type hot struct {
		site int
		sdc  float64
	}
	var top []hot
	for site := 0; site < an.Sites(); site++ {
		top = append(top, hot{site, pred.SiteSDCRatio(site, an.Bits())})
	}
	// Partial selection sort of the top 5 (tiny n, clarity over speed).
	for i := 0; i < 5 && i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].sdc > top[i].sdc {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	fmt.Println("\nmost vulnerable dynamic instructions:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  site %6d: predicted SDC %.1f%%, tolerance threshold %.3g\n",
			top[i].site, 100*top[i].sdc, res.Boundary().Thresholds[top[i].site])
	}
}
