// Quickstart: infer a program's fault tolerance boundary from a 1% sample
// and read off its resiliency — no exhaustive campaign required.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftb"
)

func main() {
	// Analyze the conjugate gradient kernel (a MiniFE-like sparse solve).
	an, err := ftb.NewKernelAnalysis("cg", ftb.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cg: %d dynamic instructions, %d possible fault injections\n",
		an.Sites(), an.SampleSpace())

	// Sample 1% of the (site × bit) space, classify each injection, and
	// aggregate the masked runs' error propagation into the boundary
	// (Algorithm 1 of the paper), with the filter operation enabled.
	res, err := an.InferBoundary(ftb.InferOptions{
		SampleFrac: 0.01,
		Filter:     true,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spent %d fault injections (%.2f%% of the space)\n",
		res.Samples(), 100*res.SampleFraction())

	// The boundary predicts the outcome of every untested injection;
	// unknown cases are conservatively assumed to be silent data
	// corruption.
	fmt.Printf("predicted whole-program SDC ratio: %.2f%%\n", 100*res.PredictedSDCRatio())

	// The uncertainty metric self-verifies the boundary on the sampled
	// outcomes — no ground truth needed. Values near 100% mean the
	// boundary's masked predictions can be trusted.
	fmt.Printf("self-verified uncertainty: %.2f%%\n", 100*res.Uncertainty())

	// Individual predictions: how would a bit flip at the middle of the
	// program behave?
	site := an.Sites() / 2
	for _, bit := range []uint8{0, 30, 52, 62, 63} {
		fmt.Printf("  site %d bit %2d -> %v\n", site, bit, res.Predictor().Predict(site, bit))
	}
}
