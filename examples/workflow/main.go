// Workflow: the production loop — analyze once, persist, reload, decide.
//
// Fault-injection analyses are expensive relative to the decisions they
// feed (which code to protect, whether a change regressed resiliency), so
// the realistic workflow separates the two: a campaign machine infers and
// saves the boundary; later consumers reload it and query without running
// a single injection. This example plays both roles in one process and
// finishes by comparing boundaries from two different sample budgets.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ftb"
)

func main() {
	dir, err := os.MkdirTemp("", "ftb-workflow-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Producer: run the analysis and persist the artifacts. --------
	an, err := ftb.NewKernelAnalysis("lu", ftb.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.InferBoundary(ftb.InferOptions{SampleFrac: 0.02, Filter: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bPath := filepath.Join(dir, "lu-boundary.ftb")
	gPath := filepath.Join(dir, "lu-golden.ftb")
	if err := ftb.SaveBoundaryFile(bPath, res.Boundary()); err != nil {
		log.Fatal(err)
	}
	if err := ftb.SaveGoldenRunFile(gPath, an.Golden()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer: %d injections -> boundary saved (%s)\n", res.Samples(), bPath)
	fmt.Printf("producer: self-verified uncertainty %.2f%%\n\n", 100*res.Uncertainty())

	// ---- Consumer: reload and query without any injections. -----------
	b, err := ftb.LoadBoundaryFile(bPath)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := an.NewPredictor(b, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consumer: outcome predictions from the reloaded boundary:")
	for _, q := range []struct {
		site int
		bit  uint8
	}{{10, 0}, {10, 45}, {10, 62}, {500, 30}} {
		fmt.Printf("  flip bit %2d at site %3d -> %v\n", q.bit, q.site, pred.Predict(q.site, q.bit))
	}

	// ---- Regression check: does a bigger budget move the boundary? ----
	res2, err := an.InferBoundary(ftb.InferOptions{SampleFrac: 0.10, Filter: true, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	small, big := res.Boundary().Thresholds, res2.Boundary().Thresholds
	grew := 0
	for i := range small {
		if big[i] > small[i] {
			grew++
		}
	}
	fmt.Printf("\n5x more samples raised %d/%d thresholds (boundary growth is monotone in evidence)\n",
		grew, len(small))
	fmt.Printf("predicted SDC: %.2f%% (2%% budget) vs %.2f%% (10%% budget)\n",
		100*res.PredictedSDCRatio(), 100*res2.PredictedSDCRatio())
}
