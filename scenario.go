package ftb

import (
	"fmt"

	"ftb/internal/kernels"
	"ftb/internal/rng"
	"ftb/internal/sampling"
	"ftb/internal/scenario"
)

// Scenario types, re-exported from the internal implementation.
type (
	// Scenario is one declarative fault scenario: a kernel, a size
	// preset, a fault model, a campaign mode with a fixed seed, and the
	// gates the campaign outcome must pass. Load them from checked-in
	// YAML files with LoadScenario / LoadScenarioDir and execute them
	// with RunScenario.
	Scenario = scenario.Scenario
	// ScenarioExpect is a scenario's gate block (exact outcome counts
	// and percentage bounds).
	ScenarioExpect = scenario.Expect
)

// Scenario campaign modes.
const (
	ScenarioExhaustive = scenario.ModeExhaustive
	ScenarioSample     = scenario.ModeSample
)

// LoadScenario parses and validates one scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.ParseFile(path) }

// LoadScenarioDir parses and validates every *.yaml scenario directly
// inside dir, sorted by file name.
func LoadScenarioDir(dir string) ([]*Scenario, error) { return scenario.LoadDir(dir) }

// ScenarioResult is one executed scenario: its outcome counts and the
// gate violations, if any.
type ScenarioResult struct {
	// Name is the scenario name.
	Name string `json:"name"`
	// Experiments is the number of classified experiments.
	Experiments int `json:"experiments"`
	// Masked, SDC, Crash are the per-outcome counts.
	Masked int `json:"masked"`
	SDC    int `json:"sdc"`
	Crash  int `json:"crash"`
	// Failures lists violated gates (empty = scenario passed).
	Failures []string `json:"failures,omitempty"`
}

// Passed reports whether every gate held.
func (r *ScenarioResult) Passed() bool { return len(r.Failures) == 0 }

// NewScenarioAnalysis builds the Analysis a scenario executes on: the
// scenario's kernel at its size preset, its tolerance override, its
// worker cap, and its fault model applied persistently. The scenario is
// validated first.
func NewScenarioAnalysis(sc *Scenario) (*Analysis, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	name, size := sc.Kernel, sc.EffectiveSize()
	k, err := kernels.New(name, size)
	if err != nil {
		return nil, err
	}
	tol := sc.Tolerance
	if tol == 0 {
		tol = k.Tolerance()
	}
	model, err := ParseFaultModel(sc.Fault)
	if err != nil {
		return nil, err
	}
	an, err := NewAnalysis(func() Program {
		kk, err := kernels.New(name, size)
		if err != nil {
			panic(err) // registry and size validated above
		}
		return kk
	}, tol, Options{Width: k.Width(), Workers: sc.Workers})
	if err != nil {
		return nil, err
	}
	return an.With(WithFaultModel(model)), nil
}

// RunScenario executes one scenario end to end and evaluates its gates.
// Exhaustive scenarios run the full campaign (through the durable
// store-backed resumable path when a WithStore option is present, with
// per-site frontier appends so a killed run loses at most one site of
// progress); sample scenarios classify a fixed-seed uniform draw.
// Identical scenario files always produce identical results — the
// determinism contract of the engine extends to the declarative layer.
// Gate violations land in the result's Failures, not in the error.
func RunScenario(sc *Scenario, opts ...RunOption) (*ScenarioResult, error) {
	an, err := NewScenarioAnalysis(sc)
	if err != nil {
		return nil, err
	}
	var kinds []Outcome
	switch sc.EffectiveMode() {
	case ScenarioExhaustive:
		var gt *GroundTruth
		if an.resolve(opts).store != nil {
			gt, err = an.ExhaustiveCheckpointed("", 1, opts...)
		} else {
			gt, err = an.Exhaustive(opts...)
		}
		if err != nil {
			return nil, err
		}
		kinds = gt.Kinds
	case ScenarioSample:
		budget := sc.Samples
		if sc.SampleFrac > 0 {
			budget = int(sc.SampleFrac * float64(an.SampleSpace()))
		}
		if budget < 1 {
			return nil, fmt.Errorf("ftb: scenario %q: sample budget %d too small (space %d)", sc.Name, budget, an.SampleSpace())
		}
		if budget > an.SampleSpace() {
			budget = an.SampleSpace()
		}
		pairs := sampling.Uniform(rng.New(sc.Seed), an.Sites(), an.Bits(), budget)
		recs, err := an.RunPairs(pairs, opts...)
		if err != nil {
			return nil, err
		}
		kinds = make([]Outcome, len(recs))
		for i, rec := range recs {
			kinds[i] = rec.Kind
		}
	}
	res := &ScenarioResult{Name: sc.Name, Experiments: len(kinds)}
	for _, kd := range kinds {
		switch kd {
		case Masked:
			res.Masked++
		case SDC:
			res.SDC++
		case Crash:
			res.Crash++
		}
	}
	res.Failures = sc.Expect.Check(res.Experiments, res.Masked, res.SDC, res.Crash)
	return res, nil
}
