package ftb

import (
	"io"

	"ftb/internal/obs"
)

// Span tracing types, re-exported from the internal obs package. A span
// is one timed interval of a traced campaign; the recorder collects them
// into a hierarchical timeline: campaign → phase → (lease →) batch →
// sampled experiment → typed sub-spans (checkpoint restore, replay tail,
// compose predict/fallback), plus queue-wait, store-append, and lease
// control spans.
type (
	// Span is one recorded interval: identity (ID/Parent), category,
	// name, worker, shard, and nanosecond start/duration.
	Span = obs.Span
	// SpanCategory classifies a span (campaign, phase, batch, restore,
	// ...); it marshals to/from its snake_case name in JSON.
	SpanCategory = obs.Category
	// SpanRecorder collects spans from concurrent campaign workers into
	// worker-striped fixed-capacity buffers. The hot path is a few atomic
	// ops and clock reads; when a stripe fills, further spans are dropped
	// and counted rather than blocking the campaign. Construct with
	// NewSpanRecorder; one recorder may serve several sequential
	// campaigns, but Cut only after the runs using it have returned.
	SpanRecorder = obs.Recorder
	// SpanAttribution is the wall-clock attribution derived from a span
	// set: per-phase busy/wait split, sampled sub-span categories scaled
	// over busy time, and the coverage of worker-time the table explains.
	SpanAttribution = obs.Attribution
	// SpanPhaseAttribution is one phase's attribution row group.
	SpanPhaseAttribution = obs.PhaseAttribution
	// SpanCategoryNS is one attribution table row: a category's
	// estimated nanoseconds and share.
	SpanCategoryNS = obs.CategoryNS
)

// Span categories, re-exported for callers that filter or label spans.
const (
	SpanCampaign    = obs.CatCampaign
	SpanPhase       = obs.CatPhase
	SpanLease       = obs.CatLease
	SpanQueueWait   = obs.CatWait
	SpanBatch       = obs.CatBatch
	SpanExperiment  = obs.CatExperiment
	SpanRestore     = obs.CatRestore
	SpanTail        = obs.CatTail
	SpanPredict     = obs.CatPredict
	SpanFallback    = obs.CatFallback
	SpanStoreAppend = obs.CatStoreAppend
)

// NewSpanRecorder builds an empty span recorder with the default
// capacity (≈140k spans across 16 worker stripes).
func NewSpanRecorder() *SpanRecorder { return obs.NewRecorder() }

// SpanOptions configures span tracing for WithSpans.
type SpanOptions struct {
	// Recorder receives the spans. Required; a nil recorder disables
	// tracing (every recording call is a nil-safe no-op).
	Recorder *SpanRecorder
	// ExperimentSample records one experiment span (with its typed
	// sub-spans) per this many experiments per worker (default
	// obs.DefaultSampleEvery = 64). 1 records every experiment — full
	// detail at measurable cost; leave the default for campaigns whose
	// timing is being measured.
	ExperimentSample int
}

// WithSpans records a hierarchical span timeline of the call's campaigns
// into o.Recorder: campaign, phase, per-worker batch and queue-wait
// spans, sampled experiment spans with typed sub-spans (checkpoint
// restore, replay tail, compose calibrate/predict/fallback), and store
// append / cluster lease control spans. Results are byte-identical with
// or without spans; the recording budget is ≤5% of campaign wall-clock
// (gated by make bench-obs). Under WithCluster, workers record their own
// spans and the coordinator grafts them under its lease spans, yielding
// one stitched campaign timeline.
//
// After the run, Cut the recorder and feed the spans to AttributeSpans
// (the `ftbcli profile` table), WriteSpansJSONL, or
// WriteSpansChromeTrace.
func WithSpans(o SpanOptions) RunOption {
	return func(rc *runConfig) {
		rc.spans = o.Recorder
		rc.spanSample = o.ExperimentSample
	}
}

// AttributeSpans reduces a quiesced span set to the wall-clock
// attribution table: per phase, how much worker time went to executing
// experiments vs restoring checkpoints vs replaying tails vs predicting
// vs waiting on the queue, and how much of the campaign the spans
// explain.
func AttributeSpans(spans []Span) SpanAttribution { return obs.Attribute(spans) }

// WriteSpansJSONL writes spans as JSON Lines, one span per line — the
// lossless archival format ReadSpansJSONL and `ftbcli profile -spans`
// consume.
func WriteSpansJSONL(w io.Writer, spans []Span) error { return obs.WriteJSONL(w, spans) }

// ReadSpansJSONL reads spans written by WriteSpansJSONL, returning them
// sorted by start time.
func ReadSpansJSONL(r io.Reader) ([]Span, error) { return obs.ReadJSONL(r) }

// WriteSpansChromeTrace writes spans in Chrome trace-event format,
// loadable in Perfetto or chrome://tracing: one process per shard
// (coordinator plus each cluster worker), one thread per campaign
// worker.
func WriteSpansChromeTrace(w io.Writer, program string, spans []Span) error {
	return obs.WriteChromeTrace(w, program, spans)
}

// startCampaignSpan opens the root campaign span for a traced run and
// points the run's phase spans at it. The returned closer ends the root
// span with the campaign's experiment count.
func (a *Analysis) startCampaignSpan(rc *runConfig) func() {
	h := rc.spans.Start(obs.CatCampaign, a.name, 0, -1)
	rc.spanParent = h.ID()
	return func() { h.End(int64(a.SampleSpace())) }
}
