package ftb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"ftb/internal/cluster"
)

// ClusterOptions configures multi-process sharded campaign execution:
// the campaign's (site × bit) space is leased in contiguous shards to
// worker processes speaking the ftb worker HTTP protocol (`ftbcli
// worker`, or any server built on the same package). Workers are
// crash-isolated — a killed worker costs the campaign only its in-flight
// shard — and the merged ground truth is byte-identical to an in-process
// run.
type ClusterOptions struct {
	// Workers is the pool of worker base URLs
	// (e.g. "http://10.0.0.2:9001").
	Workers []string
	// SelfHost forks this many local worker processes (in addition to
	// Workers) using SelfHostCommand, and kills them when the campaign
	// ends.
	SelfHost int
	// SelfHostCommand is the argv of a self-hosted worker process. It
	// must serve the same program as the analysis and print the worker
	// listening marker on stdout (as `ftbcli worker -addr
	// 127.0.0.1:0` does). Required when SelfHost > 0.
	SelfHostCommand []string
	// SpawnLog receives the stdout/stderr of self-hosted workers
	// (nil discards).
	SpawnLog io.Writer
	// ShardSize is the lease granularity in experiments (default
	// cluster.DefaultShardSize).
	ShardSize int
	// LeaseTimeout bounds one shard round trip; a worker that cannot
	// finish inside it is treated as lost and the shard is re-queued
	// (default cluster.DefaultLeaseTimeout).
	LeaseTimeout time.Duration
	// MaxWorkerFailures drops a worker from the pool after this many
	// consecutive failures (default cluster.DefaultMaxWorkerFailures).
	MaxWorkerFailures int
	// MaxLeaseAttempts fails the campaign when a single shard has failed
	// this many times across all workers (default
	// cluster.DefaultMaxLeaseAttempts).
	MaxLeaseAttempts int
	// Backoff is the initial per-worker retry delay, doubling per
	// consecutive failure (default cluster.DefaultBackoff).
	Backoff time.Duration
	// OnWorkers, when non-nil, is invoked once with the full worker URL
	// pool (configured plus self-hosted) after self-hosted workers have
	// spawned, before any lease is issued. It is how a live fleet view
	// (e.g. the ftbcli -serve /v1/fleet endpoint) learns which workers
	// to poll mid-campaign.
	OnWorkers func(urls []string)
}

// WithCluster runs the call's campaign sharded across worker processes
// instead of in-process goroutines. Only exhaustive campaigns
// (Exhaustive, ExhaustiveCheckpointed) support cluster execution; other
// campaign-running methods return an error rather than silently running
// in-process. WithPropTrace cannot be combined with WithCluster
// (trajectories would stay on the workers).
//
// Determinism holds across modes: the merged ground truth is
// byte-identical to the in-process campaign's, regardless of worker
// count, shard size, retries, or worker loss.
func WithCluster(o ClusterOptions) RunOption {
	return func(rc *runConfig) { rc.cluster = &o }
}

func errClusterUnsupported(method string) error {
	return fmt.Errorf("ftb: %s does not support WithCluster; only Exhaustive and ExhaustiveCheckpointed shard across workers", method)
}

func errFaultModelUnsupported(method string) error {
	return fmt.Errorf("ftb: %s does not support a non-default WithFaultModel; boundary inference is defined over the single-bit-flip space", method)
}

// clusterExhaustive runs the exhaustive campaign through the cluster
// coordinator. onFrontier, when non-nil, receives the partial ground
// truth and the absolute experiment frontier on every frontier advance
// (the checkpoint hook). completed lists experiment ranges already
// classified in prior that the coordinator must not re-lease (the store
// resume path), and onShard, when non-nil, receives every merged lease
// (the durable-merge hook).
func (a *Analysis) clusterExhaustive(rc runConfig, prior *GroundTruth, priorSites int, completed []cluster.Range, onShard func(lo, hi int, kinds []Outcome) error, onFrontier func(*GroundTruth, int) error) (*GroundTruth, error) {
	co := rc.cluster
	if rc.traceSink != nil {
		return nil, errors.New("ftb: WithPropTrace cannot be combined with WithCluster")
	}
	urls := append([]string(nil), co.Workers...)
	if co.SelfHost > 0 {
		if len(co.SelfHostCommand) == 0 {
			return nil, errors.New("ftb: ClusterOptions.SelfHost requires SelfHostCommand (a worker argv such as {\"ftbcli\", \"worker\", \"-kernel\", \"cg\", \"-addr\", \"127.0.0.1:0\"})")
		}
		ctx := rc.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		procs, err := cluster.SpawnWorkers(ctx, co.SelfHostCommand, co.SelfHost, co.SpawnLog, 0)
		if err != nil {
			return nil, err
		}
		defer cluster.KillAll(procs)
		urls = append(urls, cluster.URLs(procs)...)
	}
	if co.OnWorkers != nil {
		co.OnWorkers(append([]string(nil), urls...))
	}
	res, err := cluster.Exhaustive(cluster.Config{
		Workers:           urls,
		Golden:            a.golden,
		Program:           a.name,
		Tol:               a.tol,
		Bits:              a.bitsFor(rc),
		Width:             a.width,
		Model:             rc.model,
		ShardSize:         co.ShardSize,
		LeaseTimeout:      co.LeaseTimeout,
		MaxWorkerFailures: co.MaxWorkerFailures,
		MaxLeaseAttempts:  co.MaxLeaseAttempts,
		Backoff:           co.Backoff,
		Context:           rc.ctx,
		Observer:          rc.observer,
		Collector:         rc.collector,
		Logger:            rc.logger,
		Spans:             rc.spans,
		SpanParent:        rc.spanParent,
		SpanSample:        rc.spanSample,
		Prior:             prior,
		PriorSites:        priorSites,
		Completed:         completed,
		OnShard:           onShard,
		OnFrontier:        onFrontier,
	})
	if err != nil {
		return nil, err
	}
	return res.GT, nil
}
