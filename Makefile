# ftb — fault tolerance boundary. Standard-library Go only.

GO ?= go

.PHONY: all check ci build test vet lint race cover bench bench-proptrace bench-cluster bench-replay bench-store bench-compose bench-obs bench-scenarios bench-check bench-all scenario-validate scenario-run crashtest examples repro clean

# GATE holds the statistical-gate knobs shared by the cheap benchmark
# suites: three reruns per benchmark (the variance floor) aggregated to
# their median, with an ns/op coefficient-of-variation bound so a noisy
# measurement fails loudly instead of gating on garbage.
GATE_RUNS ?= 3
GATE_MAX_CV ?= 0.50
GATE = -gate -runs $(GATE_RUNS) -max-cv $(GATE_MAX_CV)
# GATE_THRESHOLD is the ns/op regression bound for the -compare lines.
# Shared/virtualized runners drift between sustained-throughput modes,
# and isolated benchmarks show 25-50% outliers between back-to-back
# windows (measured on the 1-core reference box), so the default must
# sit above that band; tighten it (GATE_THRESHOLD=0.25) on quiet
# dedicated hardware. Ratio-based gates (the obs overhead ceiling, the
# in-bench cluster-tax and compose bounds) are measured within one run
# and stay tight regardless.
GATE_THRESHOLD ?= 0.60
# REPLAY_SPEEDUP_MIN is the relative-speedup floor the replay suite must
# clear: checkpointed replay at least this many times faster than
# vanilla full re-execution on the mid-size gmres-paper campaign. The
# ratio is measured within one run (same machine, same load), so it
# stays tight where absolute ns/op baselines drift — but single-sample
# ratios on a shared builder still swing: recordings have measured
# 1.85x-2.04x on the same code. The floor sits below that band with
# headroom so the gate catches a cache that stopped paying (ratio
# collapsing toward 1x), not builder weather.
REPLAY_SPEEDUP_MIN ?= 1.7
REPLAY_SPEEDUP = -speedup 'BenchmarkReplayExhaustive/gmres-paper/vanilla:BenchmarkReplayExhaustive/gmres-paper/replay=$(REPLAY_SPEEDUP_MIN)'

all: check

# COVER_MIN is the enforced aggregate statement-coverage floor for the
# internal packages (currently ~91%; the gate leaves headroom for churn).
COVER_MIN ?= 85.0

# check is the default gate: compile, lint (vet + format + staticcheck
# when available), unit tests, and the race detector over the concurrent
# packages (the campaign engine and the trace runner it drives).
check: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi

# lint is vet + gofmt plus staticcheck when it is installed; staticcheck
# is never fetched (offline builds stay green) — the gate just reports
# that it was skipped.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# ci mirrors .github/workflows/ci.yml for local runs: the full check
# gate plus the coverage floor and the examples smoke test.
ci: check cover examples

race:
	$(GO) test -race ./internal/campaign/... ./internal/trace/... ./internal/telemetry/... ./internal/cluster/... ./internal/store/... ./internal/obs/...

# cover prints per-package coverage and enforces COVER_MIN on the
# aggregate statement coverage of the internal packages.
cover:
	$(GO) test -cover ./...
	@$(GO) test -coverpkg=./internal/... -coverprofile=cover.out ./internal/... >/dev/null
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	rm -f cover.out; \
	echo "internal/... aggregate coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "coverage below $(COVER_MIN)%"; exit 1; }

# bench runs the campaign-engine benchmarks (scheduling modes plus the
# telemetry collector on/off comparison) and records them as
# machine-readable JSON alongside the raw text.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkScheduling|BenchmarkEngineCollector)' -benchmem -benchtime=50x -count=$(GATE_RUNS) ./internal/campaign/ | tee BENCH_campaign.txt | $(GO) run ./cmd/benchjson $(GATE) > BENCH_campaign.json
	@echo "wrote BENCH_campaign.txt and BENCH_campaign.json"

# bench-proptrace measures trajectory-recording overhead on diff-mode
# runs (interleaved paired batches, so machine noise hits both sides
# equally) and records the result next to the engine benchmarks.
bench-proptrace:
	$(GO) test -run '^$$' -bench 'BenchmarkRecorder' -benchmem -count=$(GATE_RUNS) ./internal/proptrace/ | tee BENCH_proptrace.txt | $(GO) run ./cmd/benchjson $(GATE) > BENCH_proptrace.json
	@echo "wrote BENCH_proptrace.txt and BENCH_proptrace.json"

# bench-cluster records the coordinator tax: one exhaustive campaign
# in-process versus through a single self-hosted worker process. The
# selfhost1 figure must stay within ~10% of inprocess.
bench-cluster:
	$(GO) test -run '^$$' -bench BenchmarkClusterOverhead -benchtime=50x -count=$(GATE_RUNS) ./internal/cluster/ | tee BENCH_cluster.txt | $(GO) run ./cmd/benchjson $(GATE) > BENCH_cluster.json
	@echo "wrote BENCH_cluster.txt and BENCH_cluster.json"

# bench-replay records what checkpointed prefix replay buys on a full
# exhaustive campaign (replay on vs off, small and mid-size kernel),
# through the statistical gate like the other suites: the cheap cg-test
# pair runs GATE_RUNS times and lands as its median, the minutes-long
# gmres-paper pair runs once (-runs 1 is the explicit floor accommodating
# that single sample). The vanilla/replay ns/op ratio on gmres-paper is
# the acceptance figure, enforced as a relative-speedup floor
# (REPLAY_SPEEDUP_MIN) at record time and again by bench-check.
bench-replay:
	( $(GO) test -run '^$$' -bench 'BenchmarkReplayExhaustive/cg-test' -benchtime=1x -count=$(GATE_RUNS) ./internal/campaign/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkReplayExhaustive/gmres-paper' -benchtime=1x -timeout 90m ./internal/campaign/ ) | tee BENCH_replay.txt | $(GO) run ./cmd/benchjson -gate -runs 1 -max-cv $(GATE_MAX_CV) $(REPLAY_SPEEDUP) > BENCH_replay.json
	@echo "wrote BENCH_replay.txt and BENCH_replay.json"

# bench-store records the ground-truth store's cost model: append
# throughput, point lookup, range scan, full materialization, and the
# legacy container load it replaces (LoadGroundTruth, the migration
# baseline).
bench-store:
	$(GO) test -run '^$$' -bench '^(BenchmarkStore|BenchmarkLoadGroundTruth)' -benchmem -count=$(GATE_RUNS) ./internal/store/ | tee BENCH_store.txt | $(GO) run ./cmd/benchjson $(GATE) > BENCH_store.json
	@echo "wrote BENCH_store.txt and BENCH_store.json"

# bench-compose records what compositional section campaigns buy over a
# replay-enabled exhaustive campaign (composed vs exhaustive wall time on
# fft/cg at paper size). The bench itself gates zero outcome mismatches
# against ground truth and a ≥3x stores-executed speedup per kernel; the
# recorded pair in BENCH_compose.json is the acceptance artifact.
bench-compose:
	$(GO) test -run '^$$' -bench BenchmarkComposeExhaustive -benchtime=1x -timeout 90m ./internal/campaign/ | tee BENCH_compose.txt | $(GO) run ./cmd/benchjson > BENCH_compose.json
	@echo "wrote BENCH_compose.txt and BENCH_compose.json"

# bench-obs records the span-tracing tax on an exhaustive campaign:
# paired spans-off/spans-on rounds reduced to a median overhead_pct
# metric. The recorded figure is gated at ≤5% by bench-check (benchjson
# -ceiling), the span subsystem's acceptance budget.
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkEngineSpans -benchtime=1x ./internal/campaign/ | tee BENCH_obs.txt | $(GO) run ./cmd/benchjson > BENCH_obs.json
	@echo "wrote BENCH_obs.txt and BENCH_obs.json"

# bench-scenarios records the end-to-end scenario suite (parse, campaign,
# gate evaluation per checked-in scenario) as a statistical baseline:
# three samples per scenario aggregated to their median by benchjson -gate.
bench-scenarios:
	$(GO) test -run '^$$' -bench '^BenchmarkScenario' -benchtime=10x -count=$(GATE_RUNS) . | tee BENCH_scenarios.txt | $(GO) run ./cmd/benchjson $(GATE) > BENCH_scenarios.json
	@echo "wrote BENCH_scenarios.txt and BENCH_scenarios.json"

# bench-check is the release gate: re-run every recorded benchmark
# suite against its committed BENCH_*.json and fail on any ns/op
# regression beyond GATE_THRESHOLD (benchjson -compare). The cheap
# suites run through the statistical -gate path — three reruns per
# benchmark, aggregated to the median, with a variance bound — so a
# single noisy sample can neither pass nor fail the gate on its own.
# The minutes-long 1x suites (replay, compose, obs) stay single-sample
# with the floor relaxed; the obs suite additionally enforces the
# absolute ≤5% span-overhead ceiling, and the replay suite the
# REPLAY_SPEEDUP_MIN relative-speedup floor on gmres-paper.
bench-check:
	$(GO) test -run '^$$' -bench '^(BenchmarkScheduling|BenchmarkEngineCollector)' -benchmem -benchtime=50x -count=$(GATE_RUNS) ./internal/campaign/ | $(GO) run ./cmd/benchjson $(GATE) -compare BENCH_campaign.json -threshold $(GATE_THRESHOLD)
	$(GO) test -run '^$$' -bench 'BenchmarkRecorder' -benchmem -count=$(GATE_RUNS) ./internal/proptrace/ | $(GO) run ./cmd/benchjson $(GATE) -compare BENCH_proptrace.json -threshold $(GATE_THRESHOLD)
	$(GO) test -run '^$$' -bench BenchmarkClusterOverhead -benchtime=50x -count=$(GATE_RUNS) ./internal/cluster/ | $(GO) run ./cmd/benchjson $(GATE) -compare BENCH_cluster.json -threshold $(GATE_THRESHOLD)
	$(GO) test -run '^$$' -bench '^(BenchmarkStore|BenchmarkLoadGroundTruth)' -benchmem -count=$(GATE_RUNS) ./internal/store/ | $(GO) run ./cmd/benchjson $(GATE) -compare BENCH_store.json -threshold $(GATE_THRESHOLD)
	$(GO) test -run '^$$' -bench '^BenchmarkScenario' -benchtime=10x -count=$(GATE_RUNS) . | $(GO) run ./cmd/benchjson $(GATE) -compare BENCH_scenarios.json -threshold $(GATE_THRESHOLD)
	$(GO) test -run '^$$' -bench BenchmarkReplayExhaustive -benchtime=1x -timeout 90m ./internal/campaign/ | $(GO) run ./cmd/benchjson -gate -runs 1 -compare BENCH_replay.json -threshold $(GATE_THRESHOLD) $(REPLAY_SPEEDUP)
	$(GO) test -run '^$$' -bench BenchmarkComposeExhaustive -benchtime=1x -timeout 90m ./internal/campaign/ | $(GO) run ./cmd/benchjson -gate -runs 1 -compare BENCH_compose.json -threshold $(GATE_THRESHOLD)
	$(GO) test -run '^$$' -bench BenchmarkEngineSpans -benchtime=1x ./internal/campaign/ | $(GO) run ./cmd/benchjson -gate -runs 1 -compare BENCH_obs.json -threshold $(GATE_THRESHOLD) -ceiling overhead_pct=5

bench-all:
	$(GO) test -bench=. -benchmem ./...

# scenario-validate parses and validates every checked-in scenario
# without running any campaign — the PR-time CI job.
scenario-validate:
	$(GO) run ./cmd/ftbcli scenario validate ./scenarios/...

# scenario-run executes the scenario suite and fails on any gate
# violation; the gates pin exact outcome counts, so this is the
# end-to-end determinism check.
scenario-run:
	$(GO) run ./cmd/ftbcli scenario run scenarios

# crashtest proves resumability under SIGKILL: a worker process killed
# mid-lease and a coordinator process killed mid-campaign must both
# resume to a ground truth byte-identical to an undisturbed run, under a
# non-default fault model. The JSON report is the CI artifact.
crashtest:
	$(GO) build -o bin/ftbcli ./cmd/ftbcli
	$(GO) build -o bin/crashtest ./cmd/crashtest
	./bin/crashtest -scenario scenarios/stencil-burst3.yaml -ftbcli bin/ftbcli -report crashtest-report.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/errorprop
	$(GO) run ./examples/vulnmap
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/protect
	$(GO) run ./examples/workflow

# Reproduce the paper's evaluation (Tables 1-4, Figures 3-5, ablations).
# Takes tens of minutes at paper scale on one core; see EXPERIMENTS.md.
repro:
	$(GO) run ./cmd/ftbcli exp all -size paper -trials 5 | tee results_paper.txt
	$(GO) run ./cmd/ftbcli exp baseline -size paper -trials 5 | tee -a results_extra.txt
	$(GO) run ./cmd/ftbcli exp ablation -size paper -trials 3 | tee -a results_extra.txt
	$(GO) run ./cmd/ftbcli exp sensitivity -size paper -trials 5 | tee -a results_extra.txt

clean:
	$(GO) clean ./...
