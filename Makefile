# ftb — fault tolerance boundary. Standard-library Go only.

GO ?= go

.PHONY: all check build test vet lint race cover bench bench-proptrace bench-all examples repro clean

all: check

# check is the default gate: compile, lint (vet + format + staticcheck
# when available), unit tests, and the race detector over the concurrent
# packages (the campaign engine and the trace runner it drives).
check: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi

# lint is vet + gofmt plus staticcheck when it is installed; staticcheck
# is never fetched (offline builds stay green) — the gate just reports
# that it was skipped.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/campaign/... ./internal/trace/... ./internal/telemetry/...

cover:
	$(GO) test -cover ./...

# bench runs the campaign-engine benchmarks (scheduling modes plus the
# telemetry collector on/off comparison) and records them as
# machine-readable JSON alongside the raw text.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=50x ./internal/campaign/ | tee BENCH_campaign.txt | $(GO) run ./cmd/benchjson > BENCH_campaign.json
	@echo "wrote BENCH_campaign.txt and BENCH_campaign.json"

# bench-proptrace measures trajectory-recording overhead on diff-mode
# runs (interleaved paired batches, so machine noise hits both sides
# equally) and records the result next to the engine benchmarks.
bench-proptrace:
	$(GO) test -run '^$$' -bench 'BenchmarkRecorder' -benchmem ./internal/proptrace/ | tee BENCH_proptrace.txt | $(GO) run ./cmd/benchjson > BENCH_proptrace.json
	@echo "wrote BENCH_proptrace.txt and BENCH_proptrace.json"

bench-all:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/errorprop
	$(GO) run ./examples/vulnmap
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/protect
	$(GO) run ./examples/workflow

# Reproduce the paper's evaluation (Tables 1-4, Figures 3-5, ablations).
# Takes tens of minutes at paper scale on one core; see EXPERIMENTS.md.
repro:
	$(GO) run ./cmd/ftbcli exp all -size paper -trials 5 | tee results_paper.txt
	$(GO) run ./cmd/ftbcli exp baseline -size paper -trials 5 | tee -a results_extra.txt
	$(GO) run ./cmd/ftbcli exp ablation -size paper -trials 3 | tee -a results_extra.txt
	$(GO) run ./cmd/ftbcli exp sensitivity -size paper -trials 5 | tee -a results_extra.txt

clean:
	$(GO) clean ./...
