module ftb

go 1.22
