package ftb

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func runOptionAnalysis(t *testing.T) *Analysis {
	t.Helper()
	a, err := NewAnalysis(func() Program { return testChain{} }, 1e-6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestWithCollectorMatchesGroundTruth pins the acceptance identity at the
// facade level: a collector attached with WithCollector reports outcome
// counters exactly equal to the exhaustive campaign's ground truth
// tallies.
func TestWithCollectorMatchesGroundTruth(t *testing.T) {
	a := runOptionAnalysis(t)
	col := NewCollector()
	gt, err := a.Exhaustive(WithCollector(col))
	if err != nil {
		t.Fatal(err)
	}
	overall := gt.Overall()
	s := col.Snapshot()
	if s.Outcomes.Masked != int64(overall[Masked]) ||
		s.Outcomes.SDC != int64(overall[SDC]) ||
		s.Outcomes.Crash != int64(overall[Crash]) {
		t.Errorf("collector %+v != ground truth %v", s.Outcomes, overall)
	}
	if s.Experiments != int64(a.SampleSpace()) {
		t.Errorf("experiments = %d, want %d", s.Experiments, a.SampleSpace())
	}
	if s.Campaigns != 1 {
		t.Errorf("campaigns = %d, want 1", s.Campaigns)
	}
}

// TestCollectorAccumulatesAcrossCalls checks one collector can serve a
// whole workflow: ground truth, inference, and explicit pairs all feed
// the same aggregate.
func TestCollectorAccumulatesAcrossCalls(t *testing.T) {
	a := runOptionAnalysis(t)
	col := NewCollector()
	if _, err := a.Exhaustive(WithCollector(col)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InferBoundary(InferOptions{Samples: 20, Seed: 1}, WithCollector(col)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunPairs([]Pair{{Site: 0, Bit: 0}}, WithCollector(col)); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	// Inference contributes its classify samples plus a propagation-diff
	// rerun per masked sample, so the total is a floor, not an identity.
	want := int64(a.SampleSpace() + 20 + 1)
	if s.Experiments < want {
		t.Errorf("experiments = %d, want >= %d", s.Experiments, want)
	}
	if s.Campaigns < 3 {
		t.Errorf("campaigns = %d, want >= 3", s.Campaigns)
	}
	if _, ok := s.Phases["exhaustive"]; !ok {
		t.Errorf("phases = %v, want exhaustive present", s.Phases)
	}
}

func TestWithContextOption(t *testing.T) {
	a := runOptionAnalysis(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Exhaustive(WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("call-level WithContext: err = %v, want canceled", err)
	}
	if _, err := a.With(WithContext(ctx)).Exhaustive(); !errors.Is(err, context.Canceled) {
		t.Errorf("persistent With: err = %v, want canceled", err)
	}
	// The original analysis is untouched by With.
	if _, err := a.Exhaustive(); err != nil {
		t.Errorf("original analysis affected by With: %v", err)
	}
}

// TestInferBoundaryRunOptions checks that InferBoundary's trailing
// RunOptions reach its campaigns: a call-level context cancels, and a
// later option overrides an earlier one.
func TestInferBoundaryRunOptions(t *testing.T) {
	a := runOptionAnalysis(t)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.InferBoundary(InferOptions{Samples: 10}, WithContext(dead)); !errors.Is(err, context.Canceled) {
		t.Errorf("call-level WithContext: err = %v, want canceled", err)
	}
	// The last WithContext wins, matching persistent-vs-call precedence.
	if _, err := a.InferBoundary(InferOptions{Samples: 10}, WithContext(dead), WithContext(context.Background())); err != nil {
		t.Errorf("later RunOption should override earlier one: %v", err)
	}
}

func TestWithObserverAndWorkersOptions(t *testing.T) {
	a := runOptionAnalysis(t)
	var events atomic.Int64
	obs := ObserverFunc(func(ProgressEvent) { events.Add(1) })
	if _, err := a.Exhaustive(WithObserver(obs), WithWorkers(2), WithSched(SchedStatic)); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Error("observer received no progress events")
	}
}
